"""Common interface of Flash Translation Layer drivers.

Paper Section 2.1: "A typical Flash Translation Layer driver consists of an
Allocator and a Cleaner.  The Allocator handles any translation of Logical
Block Addresses (LBA) and their Physical Block Addresses (PBA). ...  The
Cleaner is to do garbage collection."  This module defines the driver
surface shared by the two concrete implementations (FTL in
:mod:`repro.ftl.page_mapping`, NFTL in :mod:`repro.ftl.nftl`), the
statistics record both maintain, and the SW Leveler wiring: a driver *is* a
:class:`~repro.core.leveler.WearLevelingHost`.

Address units: drivers operate on *logical page numbers* (LPNs).  One LPN
covers one flash page of data; the simulation engine converts the trace's
512-byte sector LBAs to LPNs using the geometry's ``sectors_per_page``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.core.leveler import WearLeveler
from repro.flash.chip import PAGE_VALID
from repro.flash.errors import TransientEraseError, TranslationError
from repro.flash.mtd import MtdDevice
from repro.obs.bus import M_GC_END, M_GC_START, M_RECOVERY
from repro.obs.events import GcEnd, GcStart, Recovery
from repro.util.diagnostics import fault_log

if TYPE_CHECKING:
    from repro.obs.bus import BusLike
    from repro.sim.metrics import EraseDistribution

#: The paper's garbage-collection trigger: GC runs "when the percentage of
#: free blocks was under 0.2% of the entire flash-memory capacity".
GC_FREE_FRACTION = 0.002

#: Erase attempts per block before a transiently failing erase is treated
#: as permanent and the block is retired (datasheet-style bounded retry).
ERASE_RETRY_LIMIT = 3

#: Default fraction of physical capacity withheld from the logical space.
#: The paper's setup exports (almost) the full capacity; a pure-software
#: driver needs some slack to garbage collect, so simulations reserve 5 %
#: unless configured otherwise (documented per experiment in DESIGN.md).
DEFAULT_OP_RATIO = 0.05


@dataclass
class LayerStats:
    """Cumulative driver activity counters.

    ``live_page_copies`` is the paper's live-page-copying count (Section
    4.3): every valid page moved during garbage collection, a fold/merge,
    or a forced static-wear-leveling recycle.
    """

    host_reads: int = 0
    host_writes: int = 0
    gc_runs: int = 0
    live_page_copies: int = 0
    folds: int = 0                 #: NFTL primary/replacement merges
    forced_recycles: int = 0       #: blocks recycled on SW Leveler request
    dead_recycles: int = 0         #: fully-invalid blocks erased on demand
    erase_retries: int = 0         #: erase attempts repeated after a fault
    program_faults: int = 0        #: program failures recovered (re-issued)
    recovery_copies: int = 0       #: live-page copies draining failing blocks
    recovery_erases: int = 0       #: erases spent on fault recovery
    extra: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, int]:
        data = {
            "host_reads": self.host_reads,
            "host_writes": self.host_writes,
            "gc_runs": self.gc_runs,
            "live_page_copies": self.live_page_copies,
            "folds": self.folds,
            "forced_recycles": self.forced_recycles,
            "dead_recycles": self.dead_recycles,
            "erase_retries": self.erase_retries,
            "program_faults": self.program_faults,
            "recovery_copies": self.recovery_copies,
            "recovery_erases": self.recovery_erases,
        }
        data.update(self.extra)
        return data


class TranslationLayer(ABC):
    """Abstract Flash Translation Layer driver over an MTD device.

    Concrete subclasses implement the Allocator (address translation) and
    the Cleaner (garbage collection).  The base class provides logical
    sizing, SW Leveler attachment, and the ``WearLevelingHost`` cost probe.

    Parameters
    ----------
    mtd:
        The MTD device to manage.
    op_ratio:
        Fraction of physical capacity withheld from the logical space.
    gc_free_fraction:
        Free-block fraction below which the Cleaner engages (paper: 0.2 %).
    alloc_policy:
        Free-block allocation order: ``"lifo"`` (default, the era's
        firmware behaviour and the baseline the paper's Table 4 implies)
        or ``"min-wear"`` (stronger allocation-side dynamic wear
        leveling).  See :mod:`repro.ftl.allocator`.
    retire_worn:
        When ``True``, a block erased past its rated endurance is retired
        (grown-bad-block management): it never returns to the free pool,
        physical capacity shrinks, and the device reaches end of life
        when the Cleaner can no longer keep its reserve — surfacing as
        :class:`~repro.flash.errors.OutOfSpaceError`.  Default ``False``,
        matching the paper's runs that continue past wear-out.
    """

    #: Short name used in reports ("FTL" / "NFTL").
    name: str = "abstract"

    def __init__(
        self,
        mtd: MtdDevice,
        *,
        op_ratio: float = DEFAULT_OP_RATIO,
        gc_free_fraction: float = GC_FREE_FRACTION,
        alloc_policy: str = "lifo",
        retire_worn: bool = False,
    ) -> None:
        if not 0.0 < op_ratio < 1.0:
            raise ValueError(f"op_ratio must be in (0, 1), got {op_ratio}")
        if not 0.0 < gc_free_fraction < 1.0:
            raise ValueError(
                f"gc_free_fraction must be in (0, 1), got {gc_free_fraction}"
            )
        self.mtd = mtd
        self.geometry = mtd.geometry
        self.op_ratio = op_ratio
        self.alloc_policy = alloc_policy
        # The Cleaner engages when free blocks drop to this count.  At the
        # paper's scale 0.2% of 4096 blocks is 8; small simulated chips
        # floor at 2 so GC always has one block of headroom to copy into.
        self.gc_free_blocks = max(2, round(gc_free_fraction * self.geometry.num_blocks))
        self.retire_worn = retire_worn
        #: Blocks withdrawn from service: worn out (with ``retire_worn``)
        #: or grown bad under fault injection.
        self.retired_blocks: set[int] = set()
        #: Blocks condemned by a program/erase fault, awaiting retirement
        #: (their live data may still need draining).
        self._failed_blocks: set[int] = set()
        self.stats = LayerStats()
        self.leveler: WearLeveler | None = None
        self._obs: "BusLike | None" = None

    def attach_bus(self, bus: "BusLike | None") -> None:
        """Emit GC and recovery telemetry on ``bus``.

        Propagates to the driver's Cleaner scanner when one exists, so a
        single attach instruments the whole driver.
        """
        self._obs = bus if bus else None
        scanner = getattr(self, "scanner", None)
        if scanner is not None:
            scanner.attach_bus(bus)

    @contextmanager
    def _gc_traced(self, reason: str, victim: int) -> Iterator[None]:
        """Bracket one GC pass with ``GcStart``/``GcEnd`` telemetry.

        The end event carries the pass's measured cost as deltas of the
        driver's copy counter and the device's erase counter.  Off the
        GC path entirely when no bus is attached.
        """
        obs = self._obs
        if obs is None or not obs.mask & (M_GC_START | M_GC_END):
            yield
            return
        obs.emit(GcStart(reason, victim))
        copies_before = self.stats.live_page_copies
        erases_before = self.mtd.counters.erases
        try:
            yield
        finally:
            obs.emit(GcEnd(
                reason, victim,
                self.stats.live_page_copies - copies_before,
                self.mtd.counters.erases - erases_before,
            ))

    def _release_or_retire(self, block: int) -> None:
        """Return an erased block to the pool, or retire it if worn/bad.

        The single chokepoint for grown-bad-block management: every block
        release in both drivers goes through here.  A retired block is
        recorded in the chip's bad-block table (so attach-time scans skip
        it across reboots) and reported to the SW Leveler (so its BET set
        stays permanently flagged and SWL-Procedure never selects it).
        """
        failed = block in self._failed_blocks
        if failed or (
            self.retire_worn
            and self.mtd.erase_counts[block] > self.geometry.endurance
        ):
            self._failed_blocks.discard(block)
            self.retired_blocks.add(block)
            self.mtd.mark_bad(block)
            self.stats.extra["retired"] = len(self.retired_blocks)
            if self.leveler is not None:
                self.leveler.on_block_retired(block)
            fault_log.info(
                "%s: retired block %d (%s, wear %d)",
                self.name, block,
                "grown bad" if failed else "worn out",
                self.mtd.erase_counts[block],
            )
            if self._obs is not None and self._obs.mask & M_RECOVERY:
                self._obs.emit(Recovery("retire", block))
            return
        self.allocator.release(block)

    def _erase_with_recovery(self, block: int) -> bool:
        """Erase ``block``, absorbing transient failures with bounded retry.

        Returns ``True`` when the erase eventually succeeded.  After
        :data:`ERASE_RETRY_LIMIT` consecutive failures the block is
        condemned (``_failed_blocks``) and its surviving valid pages are
        invalidated on-chip so no later attach scan can resurrect stale
        data from it; the caller's ``_release_or_retire`` then retires it.
        """
        attempts = 0
        while True:
            try:
                self.mtd.erase_block(block)
                if attempts:
                    self.stats.recovery_erases += 1
                return True
            except TransientEraseError:
                attempts += 1
                if attempts >= ERASE_RETRY_LIMIT:
                    break
                self.stats.erase_retries += 1
                fault_log.debug(
                    "%s: erase of block %d failed, retry %d/%d",
                    self.name, block, attempts, ERASE_RETRY_LIMIT - 1,
                )
                if self._obs is not None and self._obs.mask & M_RECOVERY:
                    self._obs.emit(Recovery("erase_retry", block))
        self._failed_blocks.add(block)
        flash = self.mtd.flash
        for page in flash.valid_pages(block):
            self.mtd.invalidate_page(block, page)
        fault_log.warning(
            "%s: erase of block %d failed %d times; condemning block",
            self.name, block, attempts,
        )
        if self._obs is not None and self._obs.mask & M_RECOVERY:
            self._obs.emit(Recovery("condemn", block))
        return False

    def _reserve_blocks(self) -> int:
        """Physical blocks withheld from the logical space.

        At least ``op_ratio`` of the chip, but never less than the GC
        trigger level plus three blocks (two write frontiers and one block
        of copy headroom) — the minimum for the Cleaner to always make
        progress.  On the paper's 4,096-block chip the 5 % ratio dominates;
        the floor only matters for the tiny chips used in unit tests.
        """
        floor = self.gc_free_blocks + 3
        wanted = math.ceil(self.op_ratio * self.geometry.num_blocks)
        reserve = max(floor, wanted)
        if reserve >= self.geometry.num_blocks:
            raise ValueError(
                f"{self.geometry.name}: {self.geometry.num_blocks} blocks leave "
                f"no logical space after reserving {reserve}"
            )
        return reserve

    # ------------------------------------------------------------------
    # Logical address space
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def num_logical_pages(self) -> int:
        """Number of logical pages exported to the host."""

    def check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.num_logical_pages:
            raise TranslationError(
                f"logical page {lpn} out of range [0, {self.num_logical_pages}) "
                f"for {self.name} over {self.geometry.name}"
            )

    # ------------------------------------------------------------------
    # Host operations
    # ------------------------------------------------------------------
    @abstractmethod
    def read(self, lpn: int) -> bytes | None:
        """Read one logical page; ``None`` when never written."""

    @abstractmethod
    def write(self, lpn: int, data: bytes | None = None) -> None:
        """Out-place update of one logical page."""

    # ------------------------------------------------------------------
    # SW Leveler integration (paper Figure 1)
    # ------------------------------------------------------------------
    def attach_leveler(self, leveler: WearLeveler) -> None:
        """Wire a SW Leveler into the Cleaner's erase path.

        Every block erase — whether from normal garbage collection or the
        leveler's own forced recycles — then reaches SWL-BETUpdate, exactly
        as the paper requires ("the BET must be updated whenever a block is
        erased").
        """
        if self.leveler is not None:
            raise RuntimeError(f"{self.name} already has a leveler attached")
        self.leveler = leveler
        self.mtd.add_erase_listener(leveler.on_block_erased)
        # A leveler attached after a reboot must learn about blocks retired
        # in earlier sessions, so their BET sets stay permanently flagged.
        for block in sorted(self.retired_blocks):
            leveler.on_block_retired(block)

    def swl_cost_probe(self) -> tuple[int, int]:
        """``(block_erases, live_page_copies)`` for SWL-overhead attribution."""
        return self.mtd.counters.erases, self.stats.live_page_copies

    @abstractmethod
    def recycle_block_range(self, blocks: range) -> int:
        """EraseBlockSet: force-recycle the given physical blocks.

        See :class:`~repro.core.leveler.WearLevelingHost`.
        """

    @contextmanager
    def _leveler_suspended(self) -> Iterator[None]:
        """Defer SWL-Procedure while the driver is mid-GC.

        BET updates still happen on every erase; the threshold check
        replays once the driver returns to a quiescent state, so a nested
        forced recycle can never interleave with an in-flight merge.
        """
        if self.leveler is None:
            yield
            return
        self.leveler.suspend()
        try:
            yield
        finally:
            self.leveler.resume()

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """JSON-friendly snapshot of the driver-common mutable state.

        Subclasses extend the dict with their mapping tables.  The
        leveler, the bus, and the MTD reference are wiring, rebuilt by
        the stack constructor before ``restore_state`` runs.
        """
        return {
            "layer": self.name,
            "retired_blocks": sorted(self.retired_blocks),
            "failed_blocks": sorted(self._failed_blocks),
            "stats": {
                "host_reads": self.stats.host_reads,
                "host_writes": self.stats.host_writes,
                "gc_runs": self.stats.gc_runs,
                "live_page_copies": self.stats.live_page_copies,
                "folds": self.stats.folds,
                "forced_recycles": self.stats.forced_recycles,
                "dead_recycles": self.stats.dead_recycles,
                "erase_retries": self.stats.erase_retries,
                "program_faults": self.stats.program_faults,
                "recovery_copies": self.stats.recovery_copies,
                "recovery_erases": self.stats.recovery_erases,
                "extra": dict(sorted(self.stats.extra.items())),
            },
            "allocator": self.allocator.snapshot_state(),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Overwrite driver-common state from :meth:`snapshot_state`."""
        if state["layer"] != self.name:
            raise ValueError(
                f"layer snapshot is for {state['layer']!r}, driver is "
                f"{self.name!r}"
            )
        self.retired_blocks = set(state["retired_blocks"])  # type: ignore[arg-type]
        self._failed_blocks = set(state["failed_blocks"])  # type: ignore[arg-type]
        stats = dict(state["stats"])  # type: ignore[arg-type]
        extra = stats.pop("extra")
        self.stats = LayerStats(**stats, extra=dict(extra))
        self.allocator.restore_state(state["allocator"])  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def failed_blocks(self) -> frozenset[int]:
        """Blocks condemned by a fault but not yet retired.

        Non-empty at the end of a run means a delivered fault's recovery
        is still in flight — the condition the fault-campaign gate treats
        as an unrecovered fault.
        """
        return frozenset(self._failed_blocks)

    @property
    def erase_counts(self) -> list[int]:
        """Per-block erase counts (the distribution behind paper Table 4)."""
        return self.mtd.erase_counts

    def erase_distribution(self) -> "EraseDistribution":
        """O(1) summary of :attr:`erase_counts` (avg/dev/max/min/total).

        Reads the chip's incremental :class:`~repro.sim.metrics.
        WearAccumulator` instead of rescanning the per-block counts;
        values are bit-identical to ``EraseDistribution.from_counts``.
        """
        return self.mtd.flash.wear.distribution()

    def utilization(self) -> float:
        """Fraction of physical pages currently holding valid data."""
        flash = self.mtd.flash
        valid = sum(
            flash.count_pages(b, PAGE_VALID) for b in range(self.geometry.num_blocks)
        )
        return valid / self.geometry.total_pages

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(geometry={self.geometry.name}, "
            f"logical_pages={self.num_logical_pages}, "
            f"leveler={'on' if self.leveler else 'off'})"
        )
