"""Free-block allocation policies.

The paper fixes the Cleaner's victim-selection policy (Section 5.1) but
not the free-block *allocation* policy.  Two policies are provided:

* ``"lifo"`` (default) — released blocks are reused most-recently-freed
  first, the common firmware free-list behaviour of the era.  Blocks the
  workload never needs stay buried: exactly the baseline the paper's
  Table 4 shows, where roughly two thirds of all blocks end a ten-year
  run with near-zero erase counts.  The SW Leveler is what pulls those
  blocks into rotation (via :meth:`BlockAllocator.promote`).
* ``"min-wear"`` — every allocation takes the least-worn free block, a
  stronger allocation-side dynamic wear leveling found in modern FTLs.
  It narrows (but does not close) the gap the SW Leveler addresses; the
  ``bench_ablation_allocator`` benchmark quantifies the difference.
"""

from __future__ import annotations

import heapq

from repro.flash.errors import OutOfSpaceError

ALLOCATION_POLICIES = ("lifo", "min-wear")


class BlockAllocator:
    """Free-block pool with a pluggable allocation order.

    Parameters
    ----------
    erase_counts:
        Live per-block erase-count list (shared with the chip; read-only
        here).  Used by the ``min-wear`` policy.
    initial_free:
        Blocks that start in the pool (every block on a fresh chip).
    policy:
        ``"lifo"`` (default) or ``"min-wear"``.
    """

    def __init__(
        self,
        erase_counts: list[int],
        initial_free: list[int],
        *,
        policy: str = "lifo",
    ) -> None:
        if policy not in ALLOCATION_POLICIES:
            raise ValueError(
                f"unknown allocation policy {policy!r}; "
                f"choose from {ALLOCATION_POLICIES}"
            )
        self.policy = policy
        self._erase_counts = erase_counts
        self._free: set[int] = set()
        self._heap: list[tuple[int, int]] = []
        self._stack: list[int] = []
        for block in initial_free:
            self.release(block)

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        """Number of blocks currently available."""
        return len(self._free)

    def contains(self, block: int) -> bool:
        """``True`` when ``block`` is in the free pool."""
        return block in self._free

    def allocate(self) -> int:
        """Remove and return the next free block per the policy.

        Raises :class:`~repro.flash.errors.OutOfSpaceError` when empty —
        callers must garbage collect *before* the pool drains.
        """
        if self.policy == "lifo":
            return self._allocate_lifo()
        return self._allocate_min_wear()

    def _allocate_lifo(self) -> int:
        while self._stack:
            block = self._stack.pop()
            if block in self._free:
                self._free.discard(block)
                return block
        raise OutOfSpaceError("free-block pool is empty")

    def _allocate_min_wear(self) -> int:
        while self._heap:
            wear_at_release, block = heapq.heappop(self._heap)
            if block not in self._free:
                continue  # stale entry from an earlier release
            if wear_at_release != self._erase_counts[block]:
                # Re-key: the block aged while pooled; push back with the
                # current wear.
                heapq.heappush(self._heap, (self._erase_counts[block], block))
                continue
            self._free.discard(block)
            return block
        raise OutOfSpaceError("free-block pool is empty")

    def release(self, block: int) -> None:
        """Return an erased block to the pool."""
        if block in self._free:
            raise ValueError(f"block {block} is already free")
        self._free.add(block)
        if self.policy == "lifo":
            self._stack.append(block)
        else:
            heapq.heappush(self._heap, (self._erase_counts[block], block))

    def promote(self, block: int) -> None:
        """Make a pooled block the next allocation candidate.

        The SW Leveler calls this when EraseBlockSet selects a block set
        that is already free: instead of erasing an empty block for
        nothing, the block is pulled to the head of the free order so it
        joins the write rotation immediately.  Under ``min-wear`` the
        pool already prefers unworn blocks, so this is a no-op.
        """
        if block not in self._free:
            raise ValueError(f"block {block} is not free")
        if self.policy == "lifo":
            self._stack.append(block)  # newest entry wins; older are stale

    def reclaim(self, block: int) -> None:
        """Remove a specific block from the pool (repurposing a pooled
        block, e.g. when rebuilding driver state at attach time)."""
        if block not in self._free:
            raise ValueError(f"block {block} is not free")
        self._free.discard(block)

    def free_blocks(self) -> set[int]:
        """Snapshot of the pooled block numbers."""
        return set(self._free)

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """JSON-friendly snapshot of the pool.

        The LIFO stack and the min-wear heap are serialized in their
        exact list order — both legitimately contain stale entries (from
        :meth:`promote` and re-keying), and allocation order is part of
        the replay-determinism contract.
        """
        return {
            "policy": self.policy,
            "free": sorted(self._free),
            "stack": list(self._stack),
            "heap": [[wear, block] for wear, block in self._heap],
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Overwrite the pool in place from :meth:`snapshot_state`.

        ``_erase_counts`` stays untouched: it is the live list shared
        with the chip, which the caller restores separately.
        """
        if state["policy"] != self.policy:
            raise ValueError(
                f"allocator snapshot policy {state['policy']!r} does not "
                f"match {self.policy!r}"
            )
        self._free = set(state["free"])  # type: ignore[arg-type]
        self._stack = list(state["stack"])  # type: ignore[arg-type]
        self._heap = [(wear, block) for wear, block in state["heap"]]  # type: ignore[union-attr]

    def __repr__(self) -> str:
        return f"BlockAllocator(policy={self.policy!r}, free={self.free_count})"
