"""Flash Translation Layer drivers: FTL (page-level) and NFTL (block-level).

These are the two "popular implementation designs" of paper Section 2.2
that the SW Leveler plugs into: :class:`~repro.ftl.page_mapping.PageMappingFTL`
with a fine-grained RAM translation table, and :class:`~repro.ftl.nftl.NFTL`
with primary/replacement block chains.  Shared machinery lives in
:mod:`repro.ftl.base` (driver interface, stats), :mod:`repro.ftl.allocator`
(min-wear free pool = dynamic wear leveling), and :mod:`repro.ftl.cleaner`
(greedy cost-benefit victim selection with cyclic scanning, Section 5.1).
"""

from repro.ftl.allocator import BlockAllocator
from repro.ftl.base import (
    DEFAULT_OP_RATIO,
    GC_FREE_FRACTION,
    LayerStats,
    TranslationLayer,
)
from repro.ftl.blockdev import BlockDevice
from repro.ftl.cleaner import CyclicScanner, GreedyScore
from repro.ftl.factory import (
    StorageBackend,
    StorageStack,
    build_backend,
    build_stack,
    driver_names,
    make_layer,
)
from repro.ftl.nftl import NFTL, BlockChain
from repro.ftl.page_mapping import PageMappingFTL

__all__ = [
    "BlockAllocator",
    "BlockChain",
    "BlockDevice",
    "CyclicScanner",
    "DEFAULT_OP_RATIO",
    "GC_FREE_FRACTION",
    "GreedyScore",
    "LayerStats",
    "NFTL",
    "PageMappingFTL",
    "StorageBackend",
    "StorageStack",
    "TranslationLayer",
    "build_backend",
    "build_stack",
    "driver_names",
    "make_layer",
]
