"""Victim selection for garbage collection.

Paper Section 5.1 fixes the Cleaner policy used for every experiment so
comparisons are fair:

    "the erasing of a block with each valid page resulted in one unit of
    recycling cost, and that with each invalid page generated one unit of
    benefit.  Block candidates for recycling were picked up by a cyclic
    scanning process over flash memory if their weighted sum of cost and
    benefit was above zero."

This module implements that greedy cost-benefit score and the cyclic
scanner.  Both FTL (scanning physical blocks) and NFTL (scanning virtual
block chains) reuse it; only the unit being scanned differs.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from itertools import chain
from typing import TYPE_CHECKING

from repro.obs.bus import M_GC_SCAN
from repro.obs.events import GcScan

if TYPE_CHECKING:
    from repro.obs.bus import BusLike


@dataclass(frozen=True, slots=True)
class GreedyScore:
    """Cost-benefit score of one recycling candidate.

    ``benefit`` counts invalid pages reclaimed; ``cost`` counts valid pages
    that must be copied out first.  A candidate qualifies when the weighted
    sum ``benefit - cost`` is above zero (paper Section 5.1, with both
    weights at one unit).
    """

    benefit: int
    cost: int

    @property
    def weighted_sum(self) -> int:
        return self.benefit - self.cost

    @property
    def qualifies(self) -> bool:
        return self.weighted_sum > 0


class CyclicScanner:
    """Cyclic scan for the next qualifying recycling candidate.

    Parameters
    ----------
    size:
        Number of scannable units (physical blocks for FTL, virtual block
        addresses for NFTL).

    The cursor persists across calls, so consecutive garbage collections
    continue around the ring instead of re-recycling the same region —
    which is itself a mild form of wear leveling and matches the paper's
    "cyclic scanning process over flash memory".
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"scanner size must be positive, got {size}")
        self.size = size
        self.cursor = 0
        self.probes = 0  # diagnostic: total candidates examined
        # Telemetry bus, set by the owning translation layer; None keeps
        # the scan loop free of any event work.
        self._obs: "BusLike | None" = None

    def attach_bus(self, bus: "BusLike | None") -> None:
        """Emit one ``GcScan`` event per victim-selection call on ``bus``."""
        self._obs = bus if bus else None

    def find(
        self,
        score_of: Callable[[int], GreedyScore | None],
    ) -> int | None:
        """Return the next unit whose score qualifies, advancing the cursor.

        ``score_of`` returns ``None`` for units that must be skipped (free
        blocks, unmapped chains, the active block).  One full revolution
        without a qualifying unit returns ``None``.
        """
        before = self.probes
        found: int | None = None
        for offset in range(self.size):
            unit = (self.cursor + offset) % self.size
            self.probes += 1
            score = score_of(unit)
            if score is not None and score.qualifies:
                self.cursor = (unit + 1) % self.size
                found = unit
                break
        if self._obs is not None and self._obs.mask & M_GC_SCAN:
            self._obs.emit(GcScan("first-fit", self.probes - before,
                                  -1 if found is None else found))
        return found

    def find_least_worn(
        self,
        score_of: Callable[[int], GreedyScore | None],
        wear_of: Callable[[int], int],
    ) -> int | None:
        """Return the qualifying unit with the smallest wear.

        This is the dynamic wear leveling the paper's baselines already
        have: "dynamic wear leveling achieves wear leveling by trying to
        recycle blocks with small erase counts" (Section 1), applied to
        the candidates the greedy cost-benefit rule admits.  One full
        cyclic revolution enumerates candidates; ties break in scan order
        so consecutive garbage collections still walk the ring.
        """
        size = self.size
        cursor = self.cursor
        # One full cyclic revolution: account all probes up front and
        # walk the two wrap segments directly, so the per-unit work is
        # the score callback and the comparisons, nothing else.
        self.probes += size
        best_unit: int | None = None
        best_wear = None
        for unit in chain(range(cursor, size), range(cursor)):
            score = score_of(unit)
            if score is None or score.benefit <= score.cost:
                continue
            wear = wear_of(unit)
            if best_wear is None or wear < best_wear:
                best_unit, best_wear = unit, wear
        if best_unit is not None:
            self.cursor = (best_unit + 1) % size
        if self._obs is not None and self._obs.mask & M_GC_SCAN:
            self._obs.emit(GcScan("least-worn", size,
                                  -1 if best_unit is None else best_unit))
        return best_unit

    def find_best_fallback(
        self,
        score_of: Callable[[int], GreedyScore | None],
    ) -> int | None:
        """Full scan for the unit with the largest weighted sum.

        Used when no unit qualifies under the strict ``> 0`` rule but space
        must still be reclaimed; only units with positive ``benefit`` are
        considered (recycling a block with nothing invalid reclaims no
        space).  Returns ``None`` when nothing can be reclaimed at all.
        """
        size = self.size
        self.probes += size
        best_unit: int | None = None
        best_sum = None
        for unit in range(size):
            score = score_of(unit)
            if score is None or score.benefit <= 0:
                continue
            weighted = score.benefit - score.cost
            if best_sum is None or weighted > best_sum:
                best_unit, best_sum = unit, weighted
        if best_unit is not None:
            self.cursor = (best_unit + 1) % size
        if self._obs is not None and self._obs.mask & M_GC_SCAN:
            self._obs.emit(GcScan("fallback", size,
                                  -1 if best_unit is None else best_unit))
        return best_unit

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, int]:
        """The scanner's mutable state: cursor position and probe count."""
        return {"size": self.size, "cursor": self.cursor, "probes": self.probes}

    def restore_state(self, state: dict[str, int]) -> None:
        """Inverse of :meth:`snapshot_state`; rejects a size mismatch."""
        if state["size"] != self.size:
            raise ValueError(
                f"scanner snapshot covers {state['size']} units, "
                f"scanner has {self.size}"
            )
        self.cursor = state["cursor"]
        self.probes = state["probes"]

    def __repr__(self) -> str:
        return f"CyclicScanner(size={self.size}, cursor={self.cursor})"
