"""The SW Leveler — paper Section 3.3, Algorithms 1 and 2.

The SW Leveler sits beside the Allocator and the Cleaner of a Flash
Translation Layer driver (Figure 1).  It owns a
:class:`~repro.core.bet.BlockErasingTable` and two procedures:

* **SWL-BETUpdate** (:meth:`SWLeveler.on_block_erased`) — invoked by the
  Cleaner on every block erase; updates ``ecnt``, ``fcnt`` and the flags.
* **SWL-Procedure** (:meth:`SWLeveler.run_procedure`) — invoked when the
  unevenness level ``ecnt / fcnt`` reaches the threshold ``T``; walks the
  cyclic cursor ``findex`` to zero-flag block sets and asks the Cleaner to
  garbage collect them, forcing cold data to move, until either the
  unevenness level drops below ``T`` or every flag is set (then the BET is
  reset, ``findex`` is re-seeded randomly, and a new resetting interval
  starts).

The leveler is FTL-agnostic: it talks to the translation layer only
through the :class:`WearLevelingHost` protocol, so the same object serves
FTL, NFTL, or any future mapping scheme — the paper's stated modularity
goal ("without many modifications to popular implementation designs").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.core.bet import BetStore, BlockErasingTable
from repro.core.policies import (
    OnEraseTrigger,
    SelectionPolicy,
    SequentialSelection,
    TriggerPolicy,
)
from repro.obs.bus import M_BET_RESET, M_SWL_INVOKE
from repro.obs.events import BetReset as BetResetEvent
from repro.obs.events import SwlInvoke as SwlInvokeEvent
from repro.util.diagnostics import leveler_log
from repro.util.rng import make_rng, rng_state_from_json, rng_state_to_json

if TYPE_CHECKING:
    from repro.array.coordinator import WearCoordinator
    from repro.obs.bus import BusLike


class WearLevelingHost(Protocol):
    """What the SW Leveler needs from a Flash Translation Layer driver."""

    def recycle_block_range(self, blocks: range) -> int:
        """Garbage collect every block in ``blocks`` (EraseBlockSet).

        Valid (cold) data in those blocks must be copied elsewhere and the
        blocks erased; address translation is updated "as the original
        design of a Flash Translation Layer driver" (Section 3.1).  Returns
        the number of blocks in ``blocks`` actually recycled; free blocks
        need not be touched (they hold no cold data).
        """
        ...

    def swl_cost_probe(self) -> tuple[int, int]:
        """Current cumulative ``(block_erases, live_page_copies)``.

        Sampled around each forced recycle to attribute overhead to static
        wear leveling (the quantities behind paper Figures 6 and 7).
        """
        ...


class WearLeveler(Protocol):
    """The driver-boundary surface every wear-leveling mechanism presents.

    :class:`SWLeveler` (the paper's design) and every challenger in
    :mod:`repro.core.alternatives` implement this protocol, so the
    translation layers, the device array, the checkpoint machinery, and
    the policy arena can drive any mechanism interchangeably — the
    pluggability :class:`~repro.core.policies.LevelerSpec` builds on.

    Two class-level capability flags steer the wiring:

    ``supports_coordination``
        ``True`` only for BET-carrying levelers a
        :class:`~repro.array.coordinator.WearCoordinator` can read.
    ``intercepts_writes``
        ``True`` for mechanisms that sit *on* the host write path (the
        cache-based wear avoider); the backend then routes host I/O
        through ``host_write``/``host_read`` instead of calling the
        translation layer directly.
    """

    supports_coordination: bool
    intercepts_writes: bool

    @property
    def label(self) -> str:
        """Mechanism label composed into backend names."""
        ...

    @property
    def ram_bytes(self) -> int:
        """Controller RAM footprint of the mechanism's bookkeeping."""
        ...

    def on_block_erased(self, block: int) -> None: ...

    def on_block_retired(self, block: int) -> None: ...

    def on_request(self, now: float | None = None) -> None: ...

    def suspend(self) -> None: ...

    def resume(self) -> None: ...

    def snapshot_state(self) -> dict[str, object]: ...

    def restore_state(self, state: dict[str, object]) -> None: ...


#: ``findex_history`` length bound.  When recording would grow past it,
#: every other retained entry is dropped and the recording stride doubles
#: — the same decimation idiom as the engine's ``WearSample`` timeline —
#: so the history holds at most this many entries over any horizon while
#: keeping a uniformly thinned view of the whole run.
MAX_FINDEX_HISTORY = 4096


@dataclass
class SWLStats:
    """Bookkeeping of everything the SW Leveler did."""

    procedure_runs: int = 0        #: SWL-Procedure invocations that did work
    procedure_checks: int = 0      #: times the trigger condition was evaluated
    forced_recycles: int = 0       #: EraseBlockSet calls that recycled something
    direct_marks: int = 0          #: free block sets flagged without an erase
    swl_erases: int = 0            #: block erases attributable to SWL
    swl_copies: int = 0            #: live-page copies attributable to SWL
    bet_resets: int = 0            #: completed resetting intervals
    #: Selected flag indices, decimated to ``MAX_FINDEX_HISTORY`` entries.
    findex_history: list[int] = field(default_factory=list)
    #: EraseBlockSet calls observed (recorded or thinned away).
    findex_seen: int = 0
    #: Record every ``findex_stride``-th selection; doubles on decimation.
    findex_stride: int = 1

    def record_findex(self, findex: int) -> None:
        """Append to ``findex_history`` under the decimation bound.

        Memory stays O(``MAX_FINDEX_HISTORY``) for arbitrarily long runs:
        at the cap, older entries thin first and later selections are
        recorded at the doubled stride, mirroring the timeline decimation
        in :class:`~repro.sim.engine.Simulator`.
        """
        if self.findex_seen % self.findex_stride == 0:
            self.findex_history.append(findex)
            if len(self.findex_history) >= MAX_FINDEX_HISTORY:
                del self.findex_history[1::2]
                self.findex_stride *= 2
        self.findex_seen += 1

    def as_dict(self) -> dict[str, int]:
        return {
            "procedure_runs": self.procedure_runs,
            "procedure_checks": self.procedure_checks,
            "forced_recycles": self.forced_recycles,
            "direct_marks": self.direct_marks,
            "swl_erases": self.swl_erases,
            "swl_copies": self.swl_copies,
            "bet_resets": self.bet_resets,
        }


class RequestClock:
    """Request counter and host clock a leveler's trigger policy reads.

    Standalone stacks give every leveler its own clock; a
    :class:`~repro.array.DeviceArray` installs one *shared* instance
    across its shard levelers, because each of them observes every host
    request anyway — one ``requests += 1`` then replaces one store per
    shard on the per-request hot path, with identical counter values.
    """

    __slots__ = ("requests", "now")

    def __init__(self) -> None:
        self.requests = 0
        self.now = 0.0


class SWLeveler:
    """Static wear leveler (SW Leveler) for a Flash Translation Layer.

    Parameters
    ----------
    num_blocks:
        Physical blocks managed (BET coverage).
    host:
        The translation-layer driver, via :class:`WearLevelingHost`.
    threshold:
        The unevenness-level threshold ``T``.  SWL-Procedure engages while
        ``ecnt / fcnt >= T`` (paper sweeps T over {100, 400, 700, 1000}).
    k:
        BET set-size exponent (paper sweeps k over {0, 1, 2, 3}).
    selection:
        Block-set selection policy; the paper's sequential cyclic scan by
        default.
    trigger:
        When to evaluate the threshold; after every erase by default.
    rng:
        Randomness source for the post-reset ``findex`` re-seed
        (Algorithm 1, step 6); seeded deterministically when omitted.
    """

    #: The BET exposes per-set unevenness to an array-level
    #: :class:`~repro.array.coordinator.WearCoordinator`; counter-free
    #: challengers (see :mod:`repro.core.alternatives`) set this False.
    supports_coordination = True
    #: This mechanism never sits on the host write path (contrast the
    #: cache-avoidance challenger, which does).
    intercepts_writes = False

    def __init__(
        self,
        num_blocks: int,
        host: WearLevelingHost,
        *,
        threshold: float = 100.0,
        k: int = 0,
        selection: SelectionPolicy | None = None,
        trigger: TriggerPolicy | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold T must be positive, got {threshold}")
        self.host = host
        self.threshold = threshold
        self.bet = BlockErasingTable(num_blocks, k)
        self.selection = selection or SequentialSelection()
        self.trigger = trigger or OnEraseTrigger()  # property: caches kind
        self.rng = rng or make_rng()
        #: Cyclic scan cursor of Algorithm 1 ("the index in the selection
        #: of a block set for static wear leveling").
        self.findex = 0
        self.stats = SWLStats()
        #: Flag indices whose block sets contain at least one retired
        #: (grown-bad) block.  They are kept permanently set — re-marked
        #: after every BET reset and restore — so SWL-Procedure's zero-flag
        #: scan never selects a retired set for forced recycling.
        self._retired_flags: set[int] = set()
        self._in_procedure = False
        self._suspended = 0
        self._deferred_check = False
        #: Request/time counters; an array swaps in a shared instance.
        self.clock = RequestClock()
        #: Array-scale coordination hook.  ``None`` (standalone stacks)
        #: keeps the paper's behaviour: every fired trigger evaluates this
        #: leveler's own threshold.  A :class:`~repro.array.coordinator.
        #: WearCoordinator` installs itself here to arbitrate SWL-Procedure
        #: across channel shards instead.
        self.coordinator: "WearCoordinator | None" = None
        self._obs: "BusLike | None" = None
        #: ``ecnt`` when a trigger was first deferred by suspension; the
        #: gap to the eventual run is the SWL trigger latency in erases.
        self._deferred_at_ecnt: int | None = None

    def attach_bus(self, bus: "BusLike | None") -> None:
        """Emit ``SwlInvoke``/``BetReset`` telemetry on ``bus``."""
        self._obs = bus if bus else None

    # ------------------------------------------------------------------
    # Host-facing notifications
    # ------------------------------------------------------------------
    def on_block_erased(self, block: int) -> None:
        """SWL-BETUpdate (Algorithm 2) plus the trigger-policy check.

        The Cleaner invokes this on *every* block erase, including erases
        the leveler itself caused; re-entrant procedure runs are suppressed
        so forced recycles update the BET without recursing.
        """
        self.bet.record_erase(block)
        if self._in_procedure:
            return
        clock = self.clock
        if self.trigger.should_check(
            erases=self.bet.ecnt, requests=clock.requests, now=clock.now
        ):
            if self._suspended:
                self._note_deferred()
            else:
                self._dispatch_trigger()

    def _note_deferred(self) -> None:
        """Remember a trigger deferred by suspension (and when it fired)."""
        self._deferred_check = True
        if self._deferred_at_ecnt is None:
            self._deferred_at_ecnt = self.bet.ecnt

    def _dispatch_trigger(self) -> None:
        """Route a fired trigger: locally, or via the array coordinator."""
        if self.coordinator is not None:
            self.coordinator.on_trigger(self)
        else:
            self.maybe_run()

    @property
    def in_procedure(self) -> bool:
        """``True`` while SWL-Procedure is running on this leveler."""
        return self._in_procedure

    @property
    def suspended(self) -> bool:
        """``True`` while the host driver has procedure runs deferred."""
        return self._suspended > 0

    def suspend(self) -> None:
        """Defer procedure runs (the host is inside its own GC/merge).

        BET updates continue; the threshold check is remembered and
        re-evaluated at :meth:`resume` so no trigger is lost.  Calls nest.
        """
        self._suspended += 1

    def resume(self) -> None:
        """Re-enable procedure runs and replay any deferred trigger check."""
        if self._suspended <= 0:
            raise RuntimeError("resume() without a matching suspend()")
        self._suspended -= 1
        if self._suspended == 0 and self._deferred_check:
            self._deferred_check = False
            self._dispatch_trigger()

    def on_block_retired(self, block: int) -> None:
        """A block left service permanently (grown bad / worn out).

        Its BET set is flagged now and re-flagged after every reset, so
        the zero-flag scan of SWL-Procedure never selects it again.  In
        one-to-many mode (k > 0) this also excludes the live blocks that
        share the set — the same resolution cost the paper accepts for
        hot data sharing a set with cold data (Section 3.2).
        """
        findex = self.bet.flag_index(block)
        if findex not in self._retired_flags:
            self._retired_flags.add(findex)
            leveler_log.info(
                "block %d retired; BET set %d permanently flagged", block, findex
            )
        if not self.bet.is_set(findex):
            self.bet.mark_handled(findex)

    @property
    def retired_flags(self) -> frozenset[int]:
        """Flag indices permanently excluded from selection."""
        return frozenset(self._retired_flags)

    @property
    def label(self) -> str:
        """Mechanism label for backend names, e.g. ``SWL+k=0+T=100``."""
        return f"SWL+k={self.bet.k}+T={int(self.threshold)}"

    @property
    def ram_bytes(self) -> int:
        """Controller RAM of the mechanism: the BET, one bit per set.

        The paper's Table 1 quantity — ``ceil(size(BET) / 8)`` bytes for
        ``ceil(num_blocks / 2^k)`` flags (``ecnt``/``fcnt``/``findex``
        are O(1) registers on every mechanism and excluded throughout).
        """
        return (self.bet.size + 7) // 8

    @property
    def trigger(self) -> TriggerPolicy:
        """The trigger policy; assignment refreshes the cached kind flag."""
        return self._trigger

    @trigger.setter
    def trigger(self, policy: TriggerPolicy) -> None:
        self._trigger = policy
        # on_request runs once per host request per leveler — in a
        # multi-channel array that is channels x requests calls — so the
        # erase-triggered default (the paper's) must exit on a flag test,
        # not an isinstance.
        self._request_driven = not isinstance(policy, OnEraseTrigger)

    def on_request(self, now: float | None = None) -> None:
        """Advance request/time counters for request- and timer-triggers.

        A :class:`~repro.array.DeviceArray` advances the (shared)
        :class:`RequestClock` once for all shard levelers and calls
        :meth:`_request_tick` directly — keep the two paths in step.
        """
        clock = self.clock
        clock.requests += 1
        if now is not None:
            clock.now = now
        if self._request_driven and not self._in_procedure:
            self._request_tick()

    def _request_tick(self) -> None:
        """Evaluate a request- or timer-driven trigger at a request edge."""
        clock = self.clock
        if self._trigger.should_check(
            erases=self.bet.ecnt, requests=clock.requests, now=clock.now
        ):
            if self._suspended:
                self._note_deferred()
            else:
                self._dispatch_trigger()

    # ------------------------------------------------------------------
    # Algorithm 1 — SWL-Procedure
    # ------------------------------------------------------------------
    def maybe_run(self) -> bool:
        """Run SWL-Procedure if the unevenness level warrants it.

        Returns ``True`` when the procedure performed at least one forced
        recycle or a BET reset.
        """
        self.stats.procedure_checks += 1
        if self.bet.fcnt == 0:                       # Alg. 1, step 1
            self._deferred_at_ecnt = None
            return False
        if self.bet.unevenness() < self.threshold:
            # A deferred trigger that no longer warrants work resolves
            # here; the latency clock must not leak into a later run.
            self._deferred_at_ecnt = None
            return False
        return self.run_procedure()

    def run_procedure(self) -> bool:
        """SWL-Procedure (Algorithm 1), unconditionally entered.

        Levels block sets until the unevenness level drops below ``T`` or
        the BET fills and resets.  Returns ``True`` if anything was done.
        """
        if self.bet.fcnt == 0:                       # step 1
            # Every procedure exit must release the deferred-trigger
            # latency clock; leaving it armed here inflated the latency
            # reported by the next SwlInvoke event.
            self._deferred_at_ecnt = None
            return False
        self._in_procedure = True
        did_work = False
        entry_unevenness = self.bet.unevenness()
        entry_ecnt = self.bet.ecnt
        entry_fcnt = self.bet.fcnt
        entry_findex = self.findex
        latency = (entry_ecnt - self._deferred_at_ecnt
                   if self._deferred_at_ecnt is not None else 0)
        self._deferred_at_ecnt = None
        try:
            while self.bet.unevenness() >= self.threshold:      # step 2
                if self.bet.all_flags_set():                    # step 3
                    self._reset_interval()                      # steps 4-7
                    did_work = True
                    return did_work                             # step 8
                target = self.selection.select(self.bet, self.findex, self.rng)
                if target is None:
                    # Defensive: cannot happen while fcnt < size(BET).
                    self._reset_interval()
                    did_work = True
                    return did_work
                self.findex = target                            # steps 9-10
                self._erase_block_set(target)                   # step 11
                did_work = True
                self.findex = (target + 1) % self.bet.size      # step 12
        finally:
            self._in_procedure = False
            if did_work:
                self.stats.procedure_runs += 1
                if self._obs is not None and self._obs.mask & M_SWL_INVOKE:
                    self._obs.emit(SwlInvokeEvent(
                        entry_findex, entry_unevenness, entry_ecnt,
                        entry_fcnt, latency))
        return did_work

    def _reset_interval(self) -> None:
        """Steps 4-7 of Algorithm 1: reset counters, flags, and ``findex``.

        Retired block sets are immediately re-flagged: a new resetting
        interval never re-opens a grown-bad block for selection.
        """
        self.bet.reset()
        for findex in self._retired_flags:
            self.bet.mark_handled(findex)
        self.findex = self.rng.randrange(self.bet.size)
        self.stats.bet_resets = self.bet.resets
        leveler_log.debug(
            "BET reset #%d (findex -> %d, %d retired sets re-flagged)",
            self.bet.resets, self.findex, len(self._retired_flags),
        )
        if self._obs is not None and self._obs.mask & M_BET_RESET:
            self._obs.emit(BetResetEvent(self.bet.resets, self.findex))

    def _erase_block_set(self, findex: int) -> None:
        """Step 11: request garbage collection over the selected block set.

        Overhead deltas around the call are attributed to static wear
        leveling.  If the host recycled nothing (the set was entirely free
        blocks) the flag is set directly so the scan makes progress — see
        DESIGN.md for the rationale of this deviation.
        """
        erases_before, copies_before = self.host.swl_cost_probe()
        recycled = self.host.recycle_block_range(self.bet.blocks_in_set(findex))
        erases_after, copies_after = self.host.swl_cost_probe()
        self.stats.swl_erases += erases_after - erases_before
        self.stats.swl_copies += copies_after - copies_before
        self.stats.record_findex(findex)
        if recycled:
            self.stats.forced_recycles += 1
        if not self.bet.is_set(findex):
            self.bet.mark_handled(findex)
            self.stats.direct_marks += 1

    # ------------------------------------------------------------------
    # Persistence (Section 3.2 / 3.3 system parameters)
    # ------------------------------------------------------------------
    def persist(self, store: BetStore) -> None:
        """Save the BET (flags + ``ecnt`` + ``fcnt``) to a dual-buffer store."""
        store.save(self.bet)

    def restore(self, store: BetStore) -> bool:
        """Reload the newest valid BET image, keeping current ``k`` geometry.

        Returns ``True`` on success.  A stale image is acceptable
        (Section 3.3: the counters "could tolerate some errors"); an image
        for a different geometry is rejected.
        """
        loaded = store.load()
        if loaded is None:
            return False
        if loaded.num_blocks != self.bet.num_blocks or loaded.k != self.bet.k:
            return False
        loaded.resets = self.bet.resets
        self.bet = loaded
        # A restored image may predate the latest retirements; re-flag.
        for findex in self._retired_flags:
            if not self.bet.is_set(findex):
                self.bet.mark_handled(findex)
        return True

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Freeze the leveler: BET image, cursor, RNG stream, statistics.

        The BET rides as its own CRC-guarded image (:meth:`BlockErasingTable.
        to_bytes`), hex-encoded for the JSON payload; ``resets`` is carried
        separately because the image format predates the counter.  Snapshots
        are taken at request boundaries, where no procedure is in flight and
        no suspension is held, so only the deferred-trigger bookkeeping
        needs to survive.
        """
        stats = self.stats
        return {
            "threshold": self.threshold,
            "bet": self.bet.to_bytes().hex(),
            "bet_resets": self.bet.resets,
            "findex": self.findex,
            "rng": rng_state_to_json(self.rng),
            # Policy identity + internal cursors: a resumed
            # EveryNRequestsTrigger._last_bucket / PeriodicTrigger
            # ._next_check left at its construction value would re-fire
            # (or skip) checks the uninterrupted run would not.
            "selection": self.selection.name,
            "trigger": {
                "kind": self._trigger.name,
                "state": self._trigger.snapshot_state(),
            },
            "retired_flags": sorted(self._retired_flags),
            "deferred_check": self._deferred_check,
            "deferred_at_ecnt": self._deferred_at_ecnt,
            "requests_seen": self.clock.requests,
            "now": self.clock.now,
            "stats": {
                "procedure_runs": stats.procedure_runs,
                "procedure_checks": stats.procedure_checks,
                "forced_recycles": stats.forced_recycles,
                "direct_marks": stats.direct_marks,
                "swl_erases": stats.swl_erases,
                "swl_copies": stats.swl_copies,
                "bet_resets": stats.bet_resets,
                "findex_history": list(stats.findex_history),
                "findex_seen": stats.findex_seen,
                "findex_stride": stats.findex_stride,
            },
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state`; rejects config mismatches."""
        if state["threshold"] != self.threshold:
            raise ValueError(
                f"leveler snapshot threshold {state['threshold']} does not "
                f"match {self.threshold}"
            )
        bet, _sequence = BlockErasingTable.from_bytes(
            bytes.fromhex(state["bet"])  # type: ignore[arg-type]
        )
        if bet.num_blocks != self.bet.num_blocks or bet.k != self.bet.k:
            raise ValueError(
                f"leveler snapshot BET geometry ({bet.num_blocks} blocks, "
                f"k={bet.k}) does not match ({self.bet.num_blocks} blocks, "
                f"k={self.bet.k})"
            )
        bet.resets = state["bet_resets"]  # type: ignore[assignment]
        if state["selection"] != self.selection.name:
            raise ValueError(
                f"leveler snapshot selection policy {state['selection']!r} "
                f"does not match {self.selection.name!r}"
            )
        trigger_state = state["trigger"]  # type: ignore[assignment]
        if trigger_state["kind"] != self._trigger.name:  # type: ignore[index]
            raise ValueError(
                f"leveler snapshot trigger policy "
                f"{trigger_state['kind']!r} does not match "  # type: ignore[index]
                f"{self._trigger.name!r}"
            )
        self._trigger.restore_state(trigger_state["state"])  # type: ignore[index]
        self.bet = bet
        self.findex = state["findex"]  # type: ignore[assignment]
        self.rng.setstate(rng_state_from_json(state["rng"]))  # type: ignore[arg-type]
        self._retired_flags = set(state["retired_flags"])  # type: ignore[arg-type]
        self._deferred_check = bool(state["deferred_check"])
        self._deferred_at_ecnt = state["deferred_at_ecnt"]  # type: ignore[assignment]
        self.clock.requests = state["requests_seen"]  # type: ignore[assignment]
        self.clock.now = state["now"]  # type: ignore[assignment]
        self._in_procedure = False
        self._suspended = 0
        stats = state["stats"]  # type: ignore[assignment]
        self.stats = SWLStats(
            procedure_runs=stats["procedure_runs"],  # type: ignore[index]
            procedure_checks=stats["procedure_checks"],  # type: ignore[index]
            forced_recycles=stats["forced_recycles"],  # type: ignore[index]
            direct_marks=stats["direct_marks"],  # type: ignore[index]
            swl_erases=stats["swl_erases"],  # type: ignore[index]
            swl_copies=stats["swl_copies"],  # type: ignore[index]
            bet_resets=stats["bet_resets"],  # type: ignore[index]
            findex_history=list(stats["findex_history"]),  # type: ignore[index]
            findex_seen=stats["findex_seen"],  # type: ignore[index]
            findex_stride=stats["findex_stride"],  # type: ignore[index]
        )

    @property
    def unevenness(self) -> float:
        """Current unevenness level ``ecnt / fcnt``."""
        return self.bet.unevenness()

    def __repr__(self) -> str:
        return (
            f"SWLeveler(T={self.threshold}, k={self.bet.k}, "
            f"unevenness={self.unevenness:.1f}, findex={self.findex})"
        )
