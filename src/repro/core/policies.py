"""Pluggable SW Leveler policies.

Two policy axes from the paper's Section 3:

* **Selection** — how SWL-Procedure picks the next cold block set.  The
  paper uses a sequential cyclic scan from ``findex`` (Algorithm 1, steps
  9-10) and argues it "is close to that in a random selection policy in
  reality because cold data could virtually exist in any block".  We
  provide both so the claim can be tested (ablation bench A).

* **Trigger** — when SWL-Procedure is invoked.  Section 3.1: "a thread or
  a procedure triggered by a timer or the Allocator/Cleaner based on some
  preset conditions".  The default checks the unevenness level after every
  erase (the Cleaner-triggered variant); alternatives check every N
  requests or on a simulated-time period.

On top of the two axes sits the **leveler registry**: a
:class:`LevelerSpec` names a complete wear-leveling *mechanism* — the
paper's BET-based SW Leveler or one of the challengers from
:mod:`repro.core.alternatives` — plus its knobs, and builds it against
any :class:`~repro.core.leveler.WearLevelingHost`.  The spec is a frozen,
picklable drop-in for :class:`~repro.core.config.SWLConfig` everywhere a
config rides (``build_stack``/``build_backend``, ``ExperimentSpec``, the
checkpoint supervisor, the fault campaign), which is what lets the
policy-arena tournament drive every mechanism by name through the same
harnesses.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.bet import BlockErasingTable

if TYPE_CHECKING:
    from repro.core.leveler import WearLevelingHost


# ----------------------------------------------------------------------
# Selection policies (which zero-flag set to level next)
# ----------------------------------------------------------------------
class SelectionPolicy(ABC):
    """Chooses the next block set for static wear leveling."""

    name: str = "abstract"

    @abstractmethod
    def select(
        self, bet: BlockErasingTable, findex: int, rng: random.Random
    ) -> int | None:
        """Return the flag index to level next, or ``None`` if all are set.

        ``findex`` is the leveler's cyclic cursor position (the value left
        by the previous iteration).
        """


class SequentialSelection(SelectionPolicy):
    """The paper's policy: advance ``findex`` cyclically to the next 0 flag.

    Sequential scanning is cheap to implement on a controller (a single
    cursor) and, per Section 3.3, behaves like random selection because
    cold data can sit anywhere in the physical address space.
    """

    name = "sequential"

    def select(
        self, bet: BlockErasingTable, findex: int, rng: random.Random
    ) -> int | None:
        return bet.next_zero_flag(findex)


class RandomSelection(SelectionPolicy):
    """Ablation policy: pick a uniformly random zero flag.

    Costs O(size(BET)) per pick (it must enumerate the zero flags), which
    is why the paper prefers the sequential scan; behaviourally the two
    should match (bench ``bench_ablation_selection``).
    """

    name = "random"

    def select(
        self, bet: BlockErasingTable, findex: int, rng: random.Random
    ) -> int | None:
        zeros = bet.zero_flags()
        if not zeros:
            return None
        return rng.choice(zeros)


_SELECTION_POLICIES = {
    SequentialSelection.name: SequentialSelection,
    RandomSelection.name: RandomSelection,
}


def make_selection_policy(name: str) -> SelectionPolicy:
    """Instantiate a selection policy by name (``sequential`` / ``random``)."""
    try:
        return _SELECTION_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown selection policy {name!r}; "
            f"choose from {sorted(_SELECTION_POLICIES)}"
        ) from None


# ----------------------------------------------------------------------
# Trigger policies (when to evaluate the unevenness level)
# ----------------------------------------------------------------------
class TriggerPolicy(ABC):
    """Decides when the leveler should evaluate ``ecnt/fcnt >= T``."""

    name: str = "abstract"

    @abstractmethod
    def should_check(self, *, erases: int, requests: int, now: float) -> bool:
        """``True`` when SWL-Procedure should be considered right now.

        Parameters are cumulative counters/clock maintained by the caller:
        total erases seen, total host requests served, simulated time.
        """

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt): a trigger's internal cursor must
    # survive a checkpoint/restore cycle or the resumed run's trigger
    # grid diverges from the uninterrupted one.  Stateless triggers
    # inherit the empty default.
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """JSON-friendly internal state (empty for stateless triggers)."""
        return {}

    def restore_state(self, state: dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state`; rejects config mismatches."""


class OnEraseTrigger(TriggerPolicy):
    """Check after every block erase (the Cleaner-triggered variant).

    This is the reference behaviour: SWL-BETUpdate runs on each erase and
    the unevenness level can only change when ``ecnt`` or ``fcnt`` does.
    """

    name = "on-erase"

    def should_check(self, *, erases: int, requests: int, now: float) -> bool:
        return True


class EveryNRequestsTrigger(TriggerPolicy):
    """Check once every ``n`` host requests (the Allocator-driven variant)."""

    name = "every-n-requests"

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self._last_bucket = -1

    def should_check(self, *, erases: int, requests: int, now: float) -> bool:
        bucket = requests // self.n
        if bucket != self._last_bucket:
            self._last_bucket = bucket
            return True
        return False

    def snapshot_state(self) -> dict[str, object]:
        return {"n": self.n, "last_bucket": self._last_bucket}

    def restore_state(self, state: dict[str, object]) -> None:
        if state["n"] != self.n:
            raise ValueError(
                f"trigger snapshot n={state['n']} does not match n={self.n}"
            )
        self._last_bucket = int(state["last_bucket"])  # type: ignore[arg-type]


class PeriodicTrigger(TriggerPolicy):
    """Check once every ``period`` seconds of simulated time (timer thread).

    The check fires on a *fixed* grid anchored at t = 0: a check observed
    late (the clock only advances at request edges, so arrival jitter is
    the norm) still schedules the next one at the next grid point, not at
    ``now + period`` — the latter would let every late arrival push the
    whole timer grid, permanently drifting the check rate below
    ``1/period``.
    """

    name = "periodic"

    def __init__(self, period: float) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self._next_check = 0.0

    def should_check(self, *, erases: int, requests: int, now: float) -> bool:
        if now < self._next_check:
            return False
        grid = self._next_check
        while grid <= now:
            grid += self.period
        self._next_check = grid
        return True

    def snapshot_state(self) -> dict[str, object]:
        return {"period": self.period, "next_check": self._next_check}

    def restore_state(self, state: dict[str, object]) -> None:
        if state["period"] != self.period:
            raise ValueError(
                f"trigger snapshot period={state['period']} does not match "
                f"period={self.period}"
            )
        self._next_check = float(state["next_check"])  # type: ignore[arg-type]


_TRIGGER_POLICIES = {
    OnEraseTrigger.name: OnEraseTrigger,
    EveryNRequestsTrigger.name: EveryNRequestsTrigger,
    PeriodicTrigger.name: PeriodicTrigger,
}


def make_trigger_policy(name: str, param: float = 0.0) -> TriggerPolicy:
    """Instantiate a trigger policy by name.

    ``param`` is ``n`` for ``every-n-requests`` and the period in
    simulated seconds for ``periodic``; ``on-erase`` ignores it.
    """
    if name == OnEraseTrigger.name:
        return OnEraseTrigger()
    if name == EveryNRequestsTrigger.name:
        return EveryNRequestsTrigger(int(param))
    if name == PeriodicTrigger.name:
        return PeriodicTrigger(param)
    raise ValueError(
        f"unknown trigger policy {name!r}; "
        f"choose from {sorted(_TRIGGER_POLICIES)}"
    )


# ----------------------------------------------------------------------
# The leveler registry: mechanisms behind one driver surface
# ----------------------------------------------------------------------
#: Builder signature: ``(spec, num_blocks, host, rng) -> leveler``.
_LevelerBuilder = Callable[
    ["LevelerSpec", int, "WearLevelingHost", random.Random | None], object
]


def _build_swl(
    spec: "LevelerSpec",
    num_blocks: int,
    host: "WearLevelingHost",
    rng: random.Random | None,
) -> object:
    # Deferred import: repro.core.leveler imports this module.
    from repro.core.leveler import SWLeveler

    return SWLeveler(
        num_blocks,
        host,
        threshold=spec.threshold,
        k=spec.k,
        selection=make_selection_policy(spec.selection),
        trigger=make_trigger_policy(spec.trigger, spec.trigger_param),
        rng=rng,
    )


def _build_dual_pool(
    spec: "LevelerSpec",
    num_blocks: int,
    host: "WearLevelingHost",
    rng: random.Random | None,
) -> object:
    from repro.core.alternatives import DualPoolLeveler, host_erase_counts

    return DualPoolLeveler(
        host_erase_counts(host, num_blocks),
        host,
        delta=int(spec.delta),
        check_period=int(spec.check_period),
        batch=int(spec.batch),
    )


def _build_cache_avoid(
    spec: "LevelerSpec",
    num_blocks: int,
    host: "WearLevelingHost",
    rng: random.Random | None,
) -> object:
    from repro.core.alternatives import CacheAvoidLeveler

    geometry = getattr(host, "geometry", None)
    page_size = getattr(geometry, "page_size", 2048)
    return CacheAvoidLeveler(
        cache_pages=int(spec.cache_pages),
        page_size=int(page_size),
    )


def _build_softwear(
    spec: "LevelerSpec",
    num_blocks: int,
    host: "WearLevelingHost",
    rng: random.Random | None,
) -> object:
    from repro.core.alternatives import SoftWearLeveler

    return SoftWearLeveler(
        num_blocks,
        host,
        period_requests=int(spec.period_requests),
        span_blocks=int(spec.span_blocks),
    )


_LEVELER_KINDS: dict[str, _LevelerBuilder] = {
    "swl": _build_swl,
    "dual-pool": _build_dual_pool,
    "cache-avoid": _build_cache_avoid,
    "softwear": _build_softwear,
}


def leveler_kinds() -> list[str]:
    """Registered mechanism names accepted by :class:`LevelerSpec`."""
    return sorted(_LEVELER_KINDS)


@dataclass(frozen=True)
class LevelerSpec:
    """A wear-leveling mechanism, by name, with its knobs.

    The union of every registered mechanism's parameters lives here so the
    spec stays a flat, frozen, picklable record (sweeps enumerate it, the
    checkpoint supervisor fingerprints it, worker processes unpickle it);
    each builder reads only the fields its ``kind`` defines:

    ``"swl"``
        The paper's BET-based SW Leveler — ``threshold``, ``k``,
        ``selection``, ``trigger``, ``trigger_param`` (exactly
        :class:`~repro.core.config.SWLConfig`'s knobs).
    ``"dual-pool"``
        Ban-patent counter-based leveling — ``delta``, ``check_period``,
        ``batch``.
    ``"cache-avoid"``
        Boukhobza-style wear *avoidance*: an LRU write-back cache in
        controller RAM absorbs rewrites before they reach flash —
        ``cache_pages``.
    ``"softwear"``
        SoftWear-style software-only leveling: no erase counters at all,
        a cyclic scrubber rotates cold data by force-recycling the next
        block span every ``period_requests`` host requests —
        ``span_blocks``.
    """

    kind: str = "swl"
    enabled: bool = True
    # --- "swl" (paper) knobs -----------------------------------------
    threshold: float = 100.0
    k: int = 0
    selection: str = "sequential"
    trigger: str = "on-erase"
    trigger_param: float = 0.0
    # --- "dual-pool" knobs -------------------------------------------
    delta: int = 32
    check_period: int = 64
    batch: int = 1
    # --- "cache-avoid" knobs -----------------------------------------
    cache_pages: int = 64
    # --- "softwear" knobs --------------------------------------------
    period_requests: int = 256
    span_blocks: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _LEVELER_KINDS:
            raise ValueError(
                f"unknown leveler kind {self.kind!r}; "
                f"choose from {leveler_kinds()}"
            )
        if not self.enabled:
            return
        if self.kind == "swl":
            if self.threshold <= 0:
                raise ValueError(
                    f"threshold must be positive, got {self.threshold}"
                )
            if self.k < 0:
                raise ValueError(f"k must be >= 0, got {self.k}")
        elif self.kind == "dual-pool":
            for field_name in ("delta", "check_period", "batch"):
                if getattr(self, field_name) <= 0:
                    raise ValueError(
                        f"{field_name} must be positive, "
                        f"got {getattr(self, field_name)}"
                    )
        elif self.kind == "cache-avoid":
            if self.cache_pages <= 0:
                raise ValueError(
                    f"cache_pages must be positive, got {self.cache_pages}"
                )
        elif self.kind == "softwear":
            if self.period_requests <= 0:
                raise ValueError(
                    f"period_requests must be positive, "
                    f"got {self.period_requests}"
                )
            if self.span_blocks <= 0:
                raise ValueError(
                    f"span_blocks must be positive, got {self.span_blocks}"
                )

    def label(self) -> str:
        """Row label for tables; matches ``SWLConfig.label`` for ``swl``."""
        if not self.enabled:
            return "baseline"
        if self.kind == "swl":
            return f"SWL+k={self.k}+T={int(self.threshold)}"
        if self.kind == "dual-pool":
            return f"DP+d={self.delta}+p={self.check_period}"
        if self.kind == "cache-avoid":
            return f"CACHE+{self.cache_pages}p"
        return f"SOFTWEAR+n={self.period_requests}+s={self.span_blocks}"

    def build(
        self,
        num_blocks: int,
        host: "WearLevelingHost",
        *,
        rng: random.Random | None = None,
    ) -> object | None:
        """Instantiate the named mechanism, or ``None`` when disabled.

        Every mechanism returned implements the common leveler driver
        surface (``on_block_erased`` / ``on_request`` / ``suspend`` /
        ``resume`` / ``on_block_retired`` / ``snapshot_state`` /
        ``restore_state`` / ``label`` / ``ram_bytes`` / ``stats``), so
        the stack and the array drive any of them interchangeably.
        """
        if not self.enabled:
            return None
        return _LEVELER_KINDS[self.kind](self, num_blocks, host, rng)
