"""Pluggable SW Leveler policies.

Two policy axes from the paper's Section 3:

* **Selection** — how SWL-Procedure picks the next cold block set.  The
  paper uses a sequential cyclic scan from ``findex`` (Algorithm 1, steps
  9-10) and argues it "is close to that in a random selection policy in
  reality because cold data could virtually exist in any block".  We
  provide both so the claim can be tested (ablation bench A).

* **Trigger** — when SWL-Procedure is invoked.  Section 3.1: "a thread or
  a procedure triggered by a timer or the Allocator/Cleaner based on some
  preset conditions".  The default checks the unevenness level after every
  erase (the Cleaner-triggered variant); alternatives check every N
  requests or on a simulated-time period.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.core.bet import BlockErasingTable


# ----------------------------------------------------------------------
# Selection policies (which zero-flag set to level next)
# ----------------------------------------------------------------------
class SelectionPolicy(ABC):
    """Chooses the next block set for static wear leveling."""

    name: str = "abstract"

    @abstractmethod
    def select(
        self, bet: BlockErasingTable, findex: int, rng: random.Random
    ) -> int | None:
        """Return the flag index to level next, or ``None`` if all are set.

        ``findex`` is the leveler's cyclic cursor position (the value left
        by the previous iteration).
        """


class SequentialSelection(SelectionPolicy):
    """The paper's policy: advance ``findex`` cyclically to the next 0 flag.

    Sequential scanning is cheap to implement on a controller (a single
    cursor) and, per Section 3.3, behaves like random selection because
    cold data can sit anywhere in the physical address space.
    """

    name = "sequential"

    def select(
        self, bet: BlockErasingTable, findex: int, rng: random.Random
    ) -> int | None:
        return bet.next_zero_flag(findex)


class RandomSelection(SelectionPolicy):
    """Ablation policy: pick a uniformly random zero flag.

    Costs O(size(BET)) per pick (it must enumerate the zero flags), which
    is why the paper prefers the sequential scan; behaviourally the two
    should match (bench ``bench_ablation_selection``).
    """

    name = "random"

    def select(
        self, bet: BlockErasingTable, findex: int, rng: random.Random
    ) -> int | None:
        zeros = bet.zero_flags()
        if not zeros:
            return None
        return rng.choice(zeros)


_SELECTION_POLICIES = {
    SequentialSelection.name: SequentialSelection,
    RandomSelection.name: RandomSelection,
}


def make_selection_policy(name: str) -> SelectionPolicy:
    """Instantiate a selection policy by name (``sequential`` / ``random``)."""
    try:
        return _SELECTION_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown selection policy {name!r}; "
            f"choose from {sorted(_SELECTION_POLICIES)}"
        ) from None


# ----------------------------------------------------------------------
# Trigger policies (when to evaluate the unevenness level)
# ----------------------------------------------------------------------
class TriggerPolicy(ABC):
    """Decides when the leveler should evaluate ``ecnt/fcnt >= T``."""

    name: str = "abstract"

    @abstractmethod
    def should_check(self, *, erases: int, requests: int, now: float) -> bool:
        """``True`` when SWL-Procedure should be considered right now.

        Parameters are cumulative counters/clock maintained by the caller:
        total erases seen, total host requests served, simulated time.
        """


class OnEraseTrigger(TriggerPolicy):
    """Check after every block erase (the Cleaner-triggered variant).

    This is the reference behaviour: SWL-BETUpdate runs on each erase and
    the unevenness level can only change when ``ecnt`` or ``fcnt`` does.
    """

    name = "on-erase"

    def should_check(self, *, erases: int, requests: int, now: float) -> bool:
        return True


class EveryNRequestsTrigger(TriggerPolicy):
    """Check once every ``n`` host requests (the Allocator-driven variant)."""

    name = "every-n-requests"

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self._last_bucket = -1

    def should_check(self, *, erases: int, requests: int, now: float) -> bool:
        bucket = requests // self.n
        if bucket != self._last_bucket:
            self._last_bucket = bucket
            return True
        return False


class PeriodicTrigger(TriggerPolicy):
    """Check once every ``period`` seconds of simulated time (timer thread)."""

    name = "periodic"

    def __init__(self, period: float) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self._next_check = 0.0

    def should_check(self, *, erases: int, requests: int, now: float) -> bool:
        if now >= self._next_check:
            self._next_check = now + self.period
            return True
        return False
