"""The Block Erasing Table (BET) — paper Section 3.2.

The BET remembers "which block has been erased in a pre-determined time
frame, referred to as the *resetting interval*, so as to locate blocks of
cold data".  It is a bit array in which each flag covers a set of ``2^k``
physically contiguous blocks:

* ``k = 0`` — one-to-one mode (Figure 3(a)): one flag per block;
* ``k > 0`` — one-to-many mode (Figure 3(b)): one flag per ``2^k`` blocks,
  set when *any* block of the set is erased.  Larger ``k`` shrinks the
  controller RAM footprint (Table 1) at the cost of occasionally
  overlooking cold blocks that share a set with hot ones.

Alongside the flags, two counters are maintained (Section 3.3): ``ecnt``,
the total number of block erases since the last reset, and ``fcnt``, the
number of 1-flags.  Their ratio ``ecnt / fcnt`` is the *unevenness level*
that triggers SWL-Procedure.

Persistence (Section 3.2): the table is saved at shutdown and reloaded at
attach; crash resistance uses the "popular dual buffer concept", provided
here by :class:`BetStore`.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass

from repro.util.bitarray import BitArray


class BlockErasingTable:
    """Erase-history bit array with the ``ecnt`` / ``fcnt`` counters.

    Parameters
    ----------
    num_blocks:
        Number of physical blocks covered.
    k:
        Set-size exponent: each flag covers ``2^k`` contiguous blocks.
        Must be ``>= 0`` (paper Section 3.2).

    Examples
    --------
    >>> bet = BlockErasingTable(num_blocks=8, k=1)
    >>> bet.record_erase(5)        # SWL-BETUpdate for block 5
    True
    >>> bet.is_set(bet.flag_index(4)), bet.ecnt, bet.fcnt
    (True, 1, 1)
    """

    def __init__(self, num_blocks: int, k: int = 0) -> None:
        if num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {num_blocks}")
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        set_size = 1 << k
        if set_size > num_blocks:
            raise ValueError(
                f"2^k = {set_size} exceeds the number of blocks ({num_blocks}); "
                "the BET would degenerate to a single flag covering everything"
            )
        self.num_blocks = num_blocks
        self.k = k
        self._flags = BitArray((num_blocks + set_size - 1) >> k)
        #: Total block erases since the last reset (Algorithm 2, step 1).
        self.ecnt = 0
        #: Number of 1-flags in the table (Algorithm 2, step 4).
        self.fcnt = 0
        #: Completed resetting intervals (diagnostic; not in the paper).
        self.resets = 0

    # ------------------------------------------------------------------
    # Geometry between blocks and flags
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of flags — ``size(BET)`` in Algorithm 1."""
        return len(self._flags)

    @property
    def nbytes(self) -> int:
        """Controller RAM for the flag array (paper Table 1)."""
        return self._flags.nbytes

    def flag_index(self, block: int) -> int:
        """Flag covering ``block``: ``floor(block / 2^k)`` (Algorithm 2)."""
        if not 0 <= block < self.num_blocks:
            raise IndexError(f"block {block} out of range [0, {self.num_blocks})")
        return block >> self.k

    def blocks_in_set(self, findex: int) -> range:
        """Physical blocks covered by flag ``findex`` (may be a short tail)."""
        if not 0 <= findex < self.size:
            raise IndexError(f"flag index {findex} out of range [0, {self.size})")
        start = findex << self.k
        return range(start, min(start + (1 << self.k), self.num_blocks))

    # ------------------------------------------------------------------
    # Algorithm 2 — SWL-BETUpdate
    # ------------------------------------------------------------------
    def record_erase(self, block: int) -> bool:
        """Account one erase of ``block``; returns ``True`` on a 0-to-1 flip.

        This is Algorithm 2 verbatim: ``ecnt`` always increases; the flag
        ``BET[block >> k]`` is set, and ``fcnt`` increases only when the
        flag was previously zero.
        """
        self.ecnt += 1
        flipped = self._flags.set(self.flag_index(block))
        if flipped:
            self.fcnt += 1
        return flipped

    def mark_handled(self, findex: int) -> bool:
        """Set flag ``findex`` without counting an erase.

        Used when SWL-Procedure selects a block set whose blocks are all
        free: erasing already-erased blocks would add wear for nothing, so
        the set is marked as handled for this resetting interval instead
        (see DESIGN.md, deviations).  Returns ``True`` on a 0-to-1 flip.
        """
        flipped = self._flags.set(findex)
        if flipped:
            self.fcnt += 1
        return flipped

    # ------------------------------------------------------------------
    # Queries used by Algorithm 1
    # ------------------------------------------------------------------
    def is_set(self, findex: int) -> bool:
        return self._flags[findex]

    def unevenness(self) -> float:
        """The unevenness level ``ecnt / fcnt`` (``0.0`` when ``fcnt == 0``).

        Algorithm 1 returns immediately when ``fcnt == 0`` (step 1), so the
        value reported for an empty table is never compared to ``T``.
        """
        if self.fcnt == 0:
            return 0.0
        return self.ecnt / self.fcnt

    def all_flags_set(self) -> bool:
        """Reset condition of Algorithm 1 step 3 (``fcnt >= size(BET)``)."""
        return self.fcnt >= self.size

    def next_zero_flag(self, start: int) -> int | None:
        """Cyclic scan for the next zero flag (Algorithm 1, steps 9-10)."""
        return self._flags.next_zero(start % self.size)

    def zero_flags(self) -> list[int]:
        """Flag indices still zero (candidate cold block sets)."""
        return self._flags.zero_indices()

    def reset(self) -> None:
        """Start a new resetting interval (Algorithm 1, steps 4-7)."""
        self._flags.reset()
        self.ecnt = 0
        self.fcnt = 0
        self.resets += 1

    # ------------------------------------------------------------------
    # Persistence (Section 3.2)
    # ------------------------------------------------------------------
    _HEADER = struct.Struct("<4sIIQQQ")  # magic, num_blocks, k, ecnt, fcnt, seq
    _MAGIC = b"BET1"

    def to_bytes(self, *, sequence: int = 0) -> bytes:
        """Serialize flags and counters with a CRC32 trailer.

        ``sequence`` is a monotonically increasing save counter used by
        :class:`BetStore` to pick the newest of the two buffers.
        """
        header = self._HEADER.pack(
            self._MAGIC, self.num_blocks, self.k, self.ecnt, self.fcnt, sequence
        )
        body = header + self._flags.to_bytes()
        return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)

    @classmethod
    def from_bytes(cls, raw: bytes) -> tuple["BlockErasingTable", int]:
        """Rebuild a table saved by :meth:`to_bytes`.

        Returns ``(table, sequence)``.  Raises ``ValueError`` on any
        corruption (bad magic, CRC, geometry, or counter inconsistency) so
        the dual-buffer loader can fall back to the other copy.
        """
        if len(raw) < cls._HEADER.size + 4:
            raise ValueError("BET image truncated")
        body, (crc,) = raw[:-4], struct.unpack("<I", raw[-4:])
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise ValueError("BET image CRC mismatch")
        magic, num_blocks, k, ecnt, fcnt, sequence = cls._HEADER.unpack(
            body[: cls._HEADER.size]
        )
        if magic != cls._MAGIC:
            raise ValueError(f"bad BET magic {magic!r}")
        table = cls(num_blocks, k)
        table._flags = BitArray.from_bytes(body[cls._HEADER.size:], table.size)
        table.ecnt = ecnt
        table.fcnt = fcnt
        if table._flags.popcount() != fcnt:
            raise ValueError(
                f"BET counter fcnt={fcnt} disagrees with "
                f"{table._flags.popcount()} set flags"
            )
        return table, sequence

    def __repr__(self) -> str:
        return (
            f"BlockErasingTable(blocks={self.num_blocks}, k={self.k}, "
            f"flags={self.size}, ecnt={self.ecnt}, fcnt={self.fcnt})"
        )


@dataclass
class _Slot:
    data: bytes | None = None


class BetStore:
    """Dual-buffer persistent store for the BET (paper Section 3.2).

    "The crash resistance of the BET information in the storage system
    could be provided by the popular dual buffer concept": saves alternate
    between two slots, each self-validating (CRC + sequence number), so a
    crash mid-save leaves at most one corrupt slot and the loader falls
    back to "any existing correct version".

    The default backend keeps the slots in memory; pass ``paths`` (two file
    paths) to persist across processes.
    """

    def __init__(self, paths: tuple[str, str] | None = None) -> None:
        self._paths = paths
        self._slots = (_Slot(), _Slot())
        self._sequence = self._scan_sequence()

    # -- backend -------------------------------------------------------
    def _scan_sequence(self) -> int:
        """Newest sequence number already present in the backing slots.

        A store reopened over existing files must keep counting from the
        on-media maximum: restarting at zero would target the *newest*
        slot for the next save and, were that save interrupted, leave
        only the stale image to fall back to.
        """
        newest = 0
        for index in range(2):
            raw = self._read_slot(index)
            if raw is None:
                continue
            try:
                _, sequence = BlockErasingTable.from_bytes(raw)
            except ValueError:
                continue
            newest = max(newest, sequence)
        return newest

    def _write_slot(self, index: int, data: bytes) -> None:
        if self._paths is None:
            self._slots[index].data = data
            return
        # Write-then-rename: a crash mid-save can never leave the slot
        # truncated, because the old image stays intact until the
        # replace commits.
        path = self._paths[index]
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)

    def _read_slot(self, index: int) -> bytes | None:
        if self._paths is None:
            return self._slots[index].data
        try:
            with open(self._paths[index], "rb") as handle:
                return handle.read()
        except OSError:
            return None

    # -- API ------------------------------------------------------------
    def save(self, table: BlockErasingTable) -> None:
        """Write ``table`` to the older of the two slots."""
        self._sequence += 1
        self._write_slot(self._sequence % 2, table.to_bytes(sequence=self._sequence))

    def load(self) -> BlockErasingTable | None:
        """Return the newest valid saved table, or ``None`` if none exists.

        Corrupt slots are skipped silently: Section 3.2 argues stale BET
        contents are acceptable "as long as we do not skip too many times
        in the shutdown of the flash-memory storage system".
        """
        best: tuple[int, BlockErasingTable] | None = None
        for index in range(2):
            raw = self._read_slot(index)
            if raw is None:
                continue
            try:
                table, sequence = BlockErasingTable.from_bytes(raw)
            except ValueError:
                continue
            if best is None or sequence > best[0]:
                best = (sequence, table)
                self._sequence = max(self._sequence, sequence)
        return None if best is None else best[1]
