"""Alternative wear-leveling mechanisms, for comparison.

The paper positions its BET-based SW Leveler against prior art it cites
but does not evaluate: A. Ban's patent "Wear leveling of static areas in
flash memory" (US 6,732,221, reference [10]) and M-Systems' TrueFFS
mechanism [16].  Those designs track *erase counts per block* in
controller RAM and trigger a cold-block move when the wear spread exceeds
a threshold — precise, but with a RAM cost the paper's one-bit-per-set
BET undercuts by 16-32x.

Three challengers live here, all drop-ins for
:class:`~repro.core.leveler.SWLeveler` at the driver boundary — same
``on_block_erased`` / ``on_request`` / ``suspend`` / ``resume`` /
``on_block_retired`` / ``snapshot_state`` / ``restore_state`` surface,
same :class:`~repro.core.leveler.WearLevelingHost` usage — so
:class:`~repro.core.policies.LevelerSpec` can build any of them into any
harness:

* :class:`DualPoolLeveler` — the classic counter-based design (equal or
  better leveling quality, at ``num_blocks * 4`` bytes of RAM versus the
  BET's ``num_blocks / 8 / 2^k``);
* :class:`CacheAvoidLeveler` — Boukhobza-style wear *avoidance*: an LRU
  write-back cache in controller RAM absorbs rewrites before they reach
  flash, trading RAM (and crash durability of the dirty cached pages)
  for fewer programs rather than evener erases;
* :class:`SoftWearLeveler` — SoftWear-style software-only leveling: no
  erase counters at all; a cyclic scrubber force-recycles the next block
  span every N host requests, rotating cold data by brute schedule at
  O(1) RAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.leveler import RequestClock, WearLevelingHost


def host_erase_counts(host: WearLevelingHost, num_blocks: int) -> list[int]:
    """The live per-block erase-count list behind a translation layer.

    Counter-based mechanisms share the chip's own array (4 bytes/block of
    controller RAM in a real device).  The checkpoint machinery restores
    chip counts in place, so the reference stays valid across restores.
    """
    counts = getattr(getattr(host, "mtd", None), "erase_counts", None)
    if counts is None:
        raise TypeError(
            "host exposes no mtd.erase_counts; pass the erase-count list "
            "to DualPoolLeveler directly"
        )
    if len(counts) != num_blocks:
        raise ValueError(
            f"host tracks {len(counts)} blocks, leveler expects {num_blocks}"
        )
    return counts


@dataclass
class DualPoolStats:
    """Activity counters of the counter-based leveler."""

    checks: int = 0
    swaps: int = 0             #: cold-block evictions performed
    swl_erases: int = 0        #: erases attributable to leveling
    swl_copies: int = 0        #: copies attributable to leveling

    def as_dict(self) -> dict[str, int]:
        return {
            "checks": self.checks,
            "swaps": self.swaps,
            "swl_erases": self.swl_erases,
            "swl_copies": self.swl_copies,
        }


class DualPoolLeveler:
    """Counter-based static wear leveling (Ban-patent style).

    Keeps the full per-block erase-count array (shared with the chip) and,
    every ``check_period`` erases, evicts the data sitting on the
    least-worn block whenever the wear spread ``max - min`` reaches
    ``delta`` — pulling the coldest block into the write rotation.

    Parameters
    ----------
    erase_counts:
        Live per-block erase-count list (the chip's own array).
    host:
        The translation-layer driver (``WearLevelingHost``).
    delta:
        Wear-spread trigger: act when ``max(counts) - min(counts) >= delta``.
    check_period:
        Erases between trigger evaluations (amortizes the O(n) scan).
    batch:
        Cold blocks evicted per triggered check.
    """

    supports_coordination = False
    intercepts_writes = False
    #: Erase-driven only; arrays skip the per-request tick entirely.
    _request_driven = False

    def __init__(
        self,
        erase_counts: list[int],
        host: WearLevelingHost,
        *,
        delta: int = 32,
        check_period: int = 64,
        batch: int = 1,
    ) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        if check_period <= 0:
            raise ValueError(f"check_period must be positive, got {check_period}")
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        self.erase_counts = erase_counts
        self.host = host
        self.delta = delta
        self.check_period = check_period
        self.batch = batch
        self.stats = DualPoolStats()
        self._erases_since_check = 0
        self._suspended = 0
        self._deferred = False
        self._in_procedure = False
        #: Blocks permanently out of service; never selected as coldest
        #: (their frozen counts would otherwise pin the cold end forever).
        self._retired: set[int] = set()
        #: Interface parity with SWLeveler; this mechanism never reads it,
        #: but a DeviceArray installs its shared clock on every leveler.
        self.clock = RequestClock()

    # ------------------------------------------------------------------
    # Driver-boundary surface (mirrors SWLeveler)
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Mechanism label for backend names, e.g. ``DP+d=32+p=64``."""
        return f"DP+d={self.delta}+p={self.check_period}"

    @property
    def ram_bytes(self) -> int:
        """Controller RAM this mechanism needs: 4 bytes per block.

        Contrast with the BET (paper Table 1): one bit per 2^k blocks.
        """
        return 4 * len(self.erase_counts)

    def on_block_retired(self, block: int) -> None:
        """Exclude a grown-bad block from future coldest-block selection."""
        self._retired.add(block)

    def on_block_erased(self, block: int) -> None:
        if self._in_procedure:
            return
        self._erases_since_check += 1
        if self._erases_since_check < self.check_period:
            return
        if self._suspended:
            self._deferred = True
            return
        self._erases_since_check = 0
        self._maybe_level()

    def on_request(self, now: float | None = None) -> None:
        """Kept for interface parity; this design is erase-driven only."""

    def suspend(self) -> None:
        self._suspended += 1

    def resume(self) -> None:
        if self._suspended <= 0:
            raise RuntimeError("resume() without a matching suspend()")
        self._suspended -= 1
        if self._suspended == 0 and self._deferred:
            self._deferred = False
            self._erases_since_check = 0
            self._maybe_level()

    # ------------------------------------------------------------------
    def _maybe_level(self) -> None:
        self.stats.checks += 1
        counts = self.erase_counts
        excluded = set(self._retired)
        candidates = [
            block for block in range(len(counts)) if block not in excluded
        ]
        if not candidates:
            return
        hottest = max(counts[block] for block in candidates)
        if hottest - min(counts[block] for block in candidates) < self.delta:
            return
        self._in_procedure = True
        try:
            swaps = 0
            while swaps < self.batch:
                pool = [
                    block for block in candidates if block not in excluded
                ]
                if not pool:
                    return
                coldest = min(pool, key=counts.__getitem__)
                hottest = max(counts[block] for block in candidates)
                if hottest - counts[coldest] < self.delta:
                    return
                erases_before, copies_before = self.host.swl_cost_probe()
                recycled = self.host.recycle_block_range(
                    range(coldest, coldest + 1)
                )
                erases_after, copies_after = self.host.swl_cost_probe()
                self.stats.swl_erases += erases_after - erases_before
                self.stats.swl_copies += copies_after - copies_before
                if not recycled:
                    # The coldest block was free: the host promoted it
                    # into the rotation without an erase.  That is not a
                    # swap, but it must not abort the whole batch either —
                    # exclude this block for the rest of the check and
                    # try the next-coldest candidate.
                    excluded.add(coldest)
                    continue
                self.stats.swaps += 1
                swaps += 1
        finally:
            self._in_procedure = False

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Freeze the leveler's trigger phase, retirements, and counters.

        The erase-count array itself belongs to the chip and rides in the
        chip's snapshot; this mechanism shares the live list, which the
        chip restores in place.  Snapshots are taken at request
        boundaries, so no procedure is in flight and no suspension held.
        """
        return {
            "kind": "dual-pool",
            "delta": self.delta,
            "check_period": self.check_period,
            "batch": self.batch,
            "num_blocks": len(self.erase_counts),
            "erases_since_check": self._erases_since_check,
            "deferred": self._deferred,
            "retired": sorted(self._retired),
            "stats": self.stats.as_dict(),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state`; rejects config mismatches."""
        if state.get("kind") != "dual-pool":
            raise ValueError(
                f"leveler snapshot kind {state.get('kind')!r} does not "
                f"match 'dual-pool'"
            )
        for field_name in ("delta", "check_period", "batch"):
            if state[field_name] != getattr(self, field_name):
                raise ValueError(
                    f"leveler snapshot {field_name}={state[field_name]} "
                    f"does not match {getattr(self, field_name)}"
                )
        if state["num_blocks"] != len(self.erase_counts):
            raise ValueError(
                f"leveler snapshot covers {state['num_blocks']} blocks, "
                f"leveler tracks {len(self.erase_counts)}"
            )
        self._erases_since_check = int(state["erases_since_check"])  # type: ignore[arg-type]
        self._deferred = bool(state["deferred"])
        self._retired = set(state["retired"])  # type: ignore[arg-type]
        stats = state["stats"]
        assert isinstance(stats, dict)
        self.stats = DualPoolStats(
            checks=stats["checks"],
            swaps=stats["swaps"],
            swl_erases=stats["swl_erases"],
            swl_copies=stats["swl_copies"],
        )
        self._suspended = 0
        self._in_procedure = False

    def __repr__(self) -> str:
        return (
            f"DualPoolLeveler(delta={self.delta}, "
            f"period={self.check_period}, ram={self.ram_bytes}B)"
        )


@dataclass
class CacheAvoidStats:
    """Activity counters of the cache-based wear-avoidance front-end."""

    hits: int = 0              #: rewrites absorbed by the cache
    misses: int = 0            #: first-seen writes inserted into the cache
    evictions: int = 0         #: LRU victims flushed to flash
    read_hits: int = 0         #: reads served from dirty cached pages
    resident: int = 0          #: dirty pages currently held in the cache

    def as_dict(self) -> dict[str, int]:
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_read_hits": self.read_hits,
            "cache_resident": self.resident,
        }


class CacheAvoidLeveler:
    """Cache-based wear *avoidance* (Boukhobza-style write cache).

    Instead of moving cold data once wear skews, this mechanism prevents
    the wear: an LRU write-back cache of ``cache_pages`` logical pages in
    controller RAM absorbs rewrites of hot pages, so only LRU victims
    (and never-rewritten pages) reach flash at all.  It sits *on* the
    host write path — ``intercepts_writes`` — and the storage stack
    routes writes through :meth:`host_write` (reads through
    :meth:`host_read`, because a dirty cached page's flash copy is
    stale).

    The trade-offs the arena surfaces: controller RAM of a full page
    buffer per slot (``cache_pages * (page_size + 4)`` bytes — orders of
    magnitude above any leveler's bookkeeping), and the dirty cached
    pages are volatile, so a power loss forfeits them (wear avoidance
    buys endurance at a crash-durability cost the BET never pays).
    Erase-count feedback is not used; ``on_block_erased`` is a no-op.
    """

    supports_coordination = False
    intercepts_writes = True
    _request_driven = False

    def __init__(
        self,
        *,
        cache_pages: int = 64,
        page_size: int = 2048,
    ) -> None:
        if cache_pages <= 0:
            raise ValueError(f"cache_pages must be positive, got {cache_pages}")
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.capacity = cache_pages
        self.page_size = page_size
        #: Insertion-ordered dict as the LRU set: oldest first, MRU last.
        self._cache: dict[int, None] = {}
        self.stats = CacheAvoidStats()
        self._suspended = 0
        self._in_procedure = False
        self.clock = RequestClock()

    # ------------------------------------------------------------------
    # Driver-boundary surface (mirrors SWLeveler)
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Mechanism label for backend names, e.g. ``CACHE+64p``."""
        return f"CACHE+{self.capacity}p"

    @property
    def ram_bytes(self) -> int:
        """Controller RAM: a page buffer plus a 4-byte tag per slot."""
        return self.capacity * (self.page_size + 4)

    def on_block_erased(self, block: int) -> None:
        """No erase-count feedback in this mechanism."""

    def on_block_retired(self, block: int) -> None:
        """Physical retirement does not touch the logical-page cache."""

    def on_request(self, now: float | None = None) -> None:
        clock = self.clock
        clock.requests += 1
        if now is not None:
            clock.now = now

    def suspend(self) -> None:
        self._suspended += 1

    def resume(self) -> None:
        if self._suspended <= 0:
            raise RuntimeError("resume() without a matching suspend()")
        self._suspended -= 1

    # ------------------------------------------------------------------
    # Write-path interception (the mechanism itself)
    # ------------------------------------------------------------------
    def host_write(self, layer: WearLevelingHost, lpn: int) -> None:
        """Absorb one host page write, flushing an LRU victim if full.

        A rewrite of a cached page is a pure hit: no flash program
        happens at all (that is the avoided wear).  A first-seen page
        occupies a slot; once the cache is full, each insertion flushes
        the least-recently-written page to flash, so flash sees exactly
        ``misses - resident`` of the host's writes.
        """
        cache = self._cache
        if lpn in cache:
            del cache[lpn]
            cache[lpn] = None
            self.stats.hits += 1
            return
        self.stats.misses += 1
        cache[lpn] = None
        if len(cache) > self.capacity:
            victim = next(iter(cache))
            del cache[victim]
            self.stats.evictions += 1
            layer.write(victim)  # type: ignore[attr-defined]
        self.stats.resident = len(cache)

    def host_read(self, layer: WearLevelingHost, lpn: int) -> None:
        """Serve one host page read, preferring the dirty cached copy."""
        if lpn in self._cache:
            self.stats.read_hits += 1
            return
        layer.read(lpn)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Freeze the cache contents (in LRU order) and the counters."""
        return {
            "kind": "cache-avoid",
            "capacity": self.capacity,
            "page_size": self.page_size,
            "cache": list(self._cache),
            "stats": self.stats.as_dict(),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state`; rejects config mismatches."""
        if state.get("kind") != "cache-avoid":
            raise ValueError(
                f"leveler snapshot kind {state.get('kind')!r} does not "
                f"match 'cache-avoid'"
            )
        if state["capacity"] != self.capacity:
            raise ValueError(
                f"leveler snapshot capacity {state['capacity']} does not "
                f"match {self.capacity}"
            )
        self._cache = {int(lpn): None for lpn in state["cache"]}  # type: ignore[union-attr]
        stats = state["stats"]
        assert isinstance(stats, dict)
        self.stats = CacheAvoidStats(
            hits=stats["cache_hits"],
            misses=stats["cache_misses"],
            evictions=stats["cache_evictions"],
            read_hits=stats["cache_read_hits"],
            resident=stats["cache_resident"],
        )
        self._suspended = 0
        self._in_procedure = False

    def __repr__(self) -> str:
        return (
            f"CacheAvoidLeveler(capacity={self.capacity}, "
            f"resident={len(self._cache)}, ram={self.ram_bytes}B)"
        )


@dataclass
class SoftWearStats:
    """Activity counters of the software-only cyclic scrubber."""

    scrubs: int = 0            #: scheduled scrub passes performed
    moves: int = 0             #: blocks actually recycled (held data)
    skipped_free: int = 0      #: scrubbed blocks that were free already
    swl_erases: int = 0        #: erases attributable to scrubbing
    swl_copies: int = 0        #: copies attributable to scrubbing

    def as_dict(self) -> dict[str, int]:
        return {
            "scrubs": self.scrubs,
            "moves": self.moves,
            "skipped_free": self.skipped_free,
            "swl_erases": self.swl_erases,
            "swl_copies": self.swl_copies,
        }


class SoftWearLeveler:
    """Software-only static wear leveling (SoftWear-style).

    The mechanism a host-side driver can run with *no* wear feedback
    from the device: no erase counters, no BET — every
    ``period_requests`` host requests it force-recycles the next
    ``span_blocks`` physical blocks of a cyclic cursor, so over one full
    revolution every block (cold data included) has been rewritten once.
    Controller RAM is O(1): the cursor and the request counter.

    The arena measures what that blindness costs: scrubbing is oblivious
    to actual wear, so it pays forced erases even on perfectly even
    devices, and its leveling lag is bounded by the revolution time
    (``num_blocks / span_blocks`` periods) rather than by a threshold.
    """

    supports_coordination = False
    intercepts_writes = False
    _request_driven = True

    def __init__(
        self,
        num_blocks: int,
        host: WearLevelingHost,
        *,
        period_requests: int = 256,
        span_blocks: int = 1,
    ) -> None:
        if num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {num_blocks}")
        if period_requests <= 0:
            raise ValueError(
                f"period_requests must be positive, got {period_requests}"
            )
        if span_blocks <= 0:
            raise ValueError(f"span_blocks must be positive, got {span_blocks}")
        self.num_blocks = num_blocks
        self.host = host
        self.period_requests = period_requests
        self.span_blocks = span_blocks
        self.cursor = 0
        self.stats = SoftWearStats()
        self.clock = RequestClock()
        self._suspended = 0
        self._deferred = False
        self._in_procedure = False
        #: Bucket 0 covers requests [0, n): never scrub an idle device.
        self._last_bucket = 0
        self._retired: set[int] = set()

    # ------------------------------------------------------------------
    # Driver-boundary surface (mirrors SWLeveler)
    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Mechanism label, e.g. ``SOFTWEAR+n=256+s=1``."""
        return f"SOFTWEAR+n={self.period_requests}+s={self.span_blocks}"

    @property
    def ram_bytes(self) -> int:
        """Controller RAM: the cyclic cursor and the request counter."""
        return 8

    def on_block_erased(self, block: int) -> None:
        """Software-only: the mechanism cannot observe device erases."""

    def on_block_retired(self, block: int) -> None:
        """Skip a grown-bad block on every future cursor pass."""
        self._retired.add(block)

    def on_request(self, now: float | None = None) -> None:
        clock = self.clock
        clock.requests += 1
        if now is not None:
            clock.now = now
        if not self._in_procedure:
            self._request_tick()

    def _request_tick(self) -> None:
        """Scrub once per ``period_requests`` bucket of host requests."""
        bucket = self.clock.requests // self.period_requests
        if bucket == self._last_bucket:
            return
        self._last_bucket = bucket
        if self._suspended:
            self._deferred = True
            return
        self._scrub()

    def suspend(self) -> None:
        self._suspended += 1

    def resume(self) -> None:
        if self._suspended <= 0:
            raise RuntimeError("resume() without a matching suspend()")
        self._suspended -= 1
        if self._suspended == 0 and self._deferred:
            self._deferred = False
            self._scrub()

    # ------------------------------------------------------------------
    def _scrub(self) -> None:
        """Force-recycle the next ``span_blocks`` live blocks at the cursor."""
        self._in_procedure = True
        try:
            remaining = self.span_blocks
            visited = 0
            while remaining > 0 and visited < self.num_blocks:
                block = self.cursor
                self.cursor = (self.cursor + 1) % self.num_blocks
                visited += 1
                if block in self._retired:
                    continue
                erases_before, copies_before = self.host.swl_cost_probe()
                recycled = self.host.recycle_block_range(
                    range(block, block + 1)
                )
                erases_after, copies_after = self.host.swl_cost_probe()
                self.stats.swl_erases += erases_after - erases_before
                self.stats.swl_copies += copies_after - copies_before
                if recycled:
                    self.stats.moves += 1
                else:
                    self.stats.skipped_free += 1
                remaining -= 1
            self.stats.scrubs += 1
        finally:
            self._in_procedure = False

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Freeze the cursor, trigger bucket, clock, and counters."""
        return {
            "kind": "softwear",
            "period_requests": self.period_requests,
            "span_blocks": self.span_blocks,
            "num_blocks": self.num_blocks,
            "cursor": self.cursor,
            "last_bucket": self._last_bucket,
            "deferred": self._deferred,
            "retired": sorted(self._retired),
            "requests_seen": self.clock.requests,
            "now": self.clock.now,
            "stats": self.stats.as_dict(),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state`; rejects config mismatches."""
        if state.get("kind") != "softwear":
            raise ValueError(
                f"leveler snapshot kind {state.get('kind')!r} does not "
                f"match 'softwear'"
            )
        for field_name in ("period_requests", "span_blocks", "num_blocks"):
            if state[field_name] != getattr(self, field_name):
                raise ValueError(
                    f"leveler snapshot {field_name}={state[field_name]} "
                    f"does not match {getattr(self, field_name)}"
                )
        self.cursor = int(state["cursor"])  # type: ignore[arg-type]
        self._last_bucket = int(state["last_bucket"])  # type: ignore[arg-type]
        self._deferred = bool(state["deferred"])
        self._retired = set(state["retired"])  # type: ignore[arg-type]
        self.clock.requests = int(state["requests_seen"])  # type: ignore[arg-type]
        self.clock.now = float(state["now"])  # type: ignore[arg-type]
        stats = state["stats"]
        assert isinstance(stats, dict)
        self.stats = SoftWearStats(
            scrubs=stats["scrubs"],
            moves=stats["moves"],
            skipped_free=stats["skipped_free"],
            swl_erases=stats["swl_erases"],
            swl_copies=stats["swl_copies"],
        )
        self._suspended = 0
        self._in_procedure = False

    def __repr__(self) -> str:
        return (
            f"SoftWearLeveler(period={self.period_requests}, "
            f"span={self.span_blocks}, cursor={self.cursor})"
        )
