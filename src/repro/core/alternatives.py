"""Alternative static wear-leveling mechanisms, for comparison.

The paper positions its BET-based SW Leveler against prior art it cites
but does not evaluate: A. Ban's patent "Wear leveling of static areas in
flash memory" (US 6,732,221, reference [10]) and M-Systems' TrueFFS
mechanism [16].  Those designs track *erase counts per block* in
controller RAM and trigger a cold-block move when the wear spread exceeds
a threshold — precise, but with a RAM cost the paper's one-bit-per-set
BET undercuts by 16-32x.

:class:`DualPoolLeveler` implements that classic counter-based design so
the trade-off can be measured (``bench_ablation_mechanism``): equal or
better leveling quality, at ``num_blocks * 4`` bytes of RAM versus the
BET's ``num_blocks / 8 / 2^k``.

The class is a drop-in for :class:`~repro.core.leveler.SWLeveler` at the
driver boundary: same ``on_block_erased`` / ``on_request`` /
``suspend`` / ``resume`` surface, same
:class:`~repro.core.leveler.WearLevelingHost` usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.leveler import WearLevelingHost


@dataclass
class DualPoolStats:
    """Activity counters of the counter-based leveler."""

    checks: int = 0
    swaps: int = 0             #: cold-block evictions performed
    swl_erases: int = 0        #: erases attributable to leveling
    swl_copies: int = 0        #: copies attributable to leveling

    def as_dict(self) -> dict[str, int]:
        return {
            "checks": self.checks,
            "swaps": self.swaps,
            "swl_erases": self.swl_erases,
            "swl_copies": self.swl_copies,
        }


class DualPoolLeveler:
    """Counter-based static wear leveling (Ban-patent style).

    Keeps the full per-block erase-count array (shared with the chip) and,
    every ``check_period`` erases, evicts the data sitting on the
    least-worn block whenever the wear spread ``max - min`` reaches
    ``delta`` — pulling the coldest block into the write rotation.

    Parameters
    ----------
    erase_counts:
        Live per-block erase-count list (the chip's own array).
    host:
        The translation-layer driver (``WearLevelingHost``).
    delta:
        Wear-spread trigger: act when ``max(counts) - min(counts) >= delta``.
    check_period:
        Erases between trigger evaluations (amortizes the O(n) scan).
    batch:
        Cold blocks evicted per triggered check.
    """

    def __init__(
        self,
        erase_counts: list[int],
        host: WearLevelingHost,
        *,
        delta: int = 32,
        check_period: int = 64,
        batch: int = 1,
    ) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        if check_period <= 0:
            raise ValueError(f"check_period must be positive, got {check_period}")
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        self.erase_counts = erase_counts
        self.host = host
        self.delta = delta
        self.check_period = check_period
        self.batch = batch
        self.stats = DualPoolStats()
        self._erases_since_check = 0
        self._suspended = 0
        self._deferred = False
        self._in_procedure = False

    # ------------------------------------------------------------------
    # Driver-boundary surface (mirrors SWLeveler)
    # ------------------------------------------------------------------
    @property
    def ram_bytes(self) -> int:
        """Controller RAM this mechanism needs: 4 bytes per block.

        Contrast with the BET (paper Table 1): one bit per 2^k blocks.
        """
        return 4 * len(self.erase_counts)

    def on_block_erased(self, block: int) -> None:
        if self._in_procedure:
            return
        self._erases_since_check += 1
        if self._erases_since_check < self.check_period:
            return
        if self._suspended:
            self._deferred = True
            return
        self._erases_since_check = 0
        self._maybe_level()

    def on_request(self, now: float | None = None) -> None:
        """Kept for interface parity; this design is erase-driven only."""

    def suspend(self) -> None:
        self._suspended += 1

    def resume(self) -> None:
        if self._suspended <= 0:
            raise RuntimeError("resume() without a matching suspend()")
        self._suspended -= 1
        if self._suspended == 0 and self._deferred:
            self._deferred = False
            self._erases_since_check = 0
            self._maybe_level()

    # ------------------------------------------------------------------
    def _maybe_level(self) -> None:
        self.stats.checks += 1
        counts = self.erase_counts
        if max(counts) - min(counts) < self.delta:
            return
        self._in_procedure = True
        try:
            for _ in range(self.batch):
                coldest = min(range(len(counts)), key=counts.__getitem__)
                if max(counts) - counts[coldest] < self.delta:
                    return
                erases_before, copies_before = self.host.swl_cost_probe()
                recycled = self.host.recycle_block_range(
                    range(coldest, coldest + 1)
                )
                erases_after, copies_after = self.host.swl_cost_probe()
                self.stats.swl_erases += erases_after - erases_before
                self.stats.swl_copies += copies_after - copies_before
                if not recycled:
                    # The coldest block was free: the host promoted it into
                    # the rotation; wear will catch up without an erase.
                    return
                self.stats.swaps += 1
        finally:
            self._in_procedure = False

    def __repr__(self) -> str:
        return (
            f"DualPoolLeveler(delta={self.delta}, "
            f"period={self.check_period}, ram={self.ram_bytes}B)"
        )
