"""The paper's primary contribution: the static wear leveling mechanism.

* :mod:`repro.core.bet` — the Block Erasing Table (Section 3.2) and its
  dual-buffer persistent store.
* :mod:`repro.core.leveler` — the SW Leveler running SWL-Procedure and
  SWL-BETUpdate (Section 3.3, Algorithms 1-2).
* :mod:`repro.core.policies` — block-set selection and trigger policies.
* :mod:`repro.core.config` — declarative configuration and the paper's
  (k, T) sweep.
"""

from repro.core.alternatives import DualPoolLeveler, DualPoolStats
from repro.core.bet import BetStore, BlockErasingTable
from repro.core.config import (
    DISABLED,
    PAPER_K_VALUES,
    PAPER_THRESHOLDS,
    SWLConfig,
    paper_sweep,
)
from repro.core.leveler import SWLeveler, SWLStats, WearLevelingHost
from repro.core.policies import (
    EveryNRequestsTrigger,
    OnEraseTrigger,
    PeriodicTrigger,
    RandomSelection,
    SelectionPolicy,
    SequentialSelection,
    TriggerPolicy,
    make_selection_policy,
)

__all__ = [
    "BetStore",
    "BlockErasingTable",
    "DISABLED",
    "DualPoolLeveler",
    "DualPoolStats",
    "EveryNRequestsTrigger",
    "OnEraseTrigger",
    "PAPER_K_VALUES",
    "PAPER_THRESHOLDS",
    "PeriodicTrigger",
    "RandomSelection",
    "SWLConfig",
    "SWLStats",
    "SWLeveler",
    "SelectionPolicy",
    "SequentialSelection",
    "TriggerPolicy",
    "WearLevelingHost",
    "make_selection_policy",
    "paper_sweep",
]
