"""The paper's primary contribution: the static wear leveling mechanism.

* :mod:`repro.core.bet` — the Block Erasing Table (Section 3.2) and its
  dual-buffer persistent store.
* :mod:`repro.core.leveler` — the SW Leveler running SWL-Procedure and
  SWL-BETUpdate (Section 3.3, Algorithms 1-2).
* :mod:`repro.core.policies` — block-set selection and trigger policies,
  plus the :class:`LevelerSpec` mechanism registry behind the arena.
* :mod:`repro.core.alternatives` — challenger mechanisms (dual-pool,
  cache-based avoidance, software-only scrubbing).
* :mod:`repro.core.config` — declarative configuration and the paper's
  (k, T) sweep.
"""

from repro.core.alternatives import (
    CacheAvoidLeveler,
    CacheAvoidStats,
    DualPoolLeveler,
    DualPoolStats,
    SoftWearLeveler,
    SoftWearStats,
)
from repro.core.bet import BetStore, BlockErasingTable
from repro.core.config import (
    DISABLED,
    PAPER_K_VALUES,
    PAPER_THRESHOLDS,
    SWLConfig,
    paper_sweep,
)
from repro.core.leveler import (
    SWLeveler,
    SWLStats,
    WearLeveler,
    WearLevelingHost,
)
from repro.core.policies import (
    EveryNRequestsTrigger,
    LevelerSpec,
    OnEraseTrigger,
    PeriodicTrigger,
    RandomSelection,
    SelectionPolicy,
    SequentialSelection,
    TriggerPolicy,
    leveler_kinds,
    make_selection_policy,
    make_trigger_policy,
)

__all__ = [
    "BetStore",
    "BlockErasingTable",
    "CacheAvoidLeveler",
    "CacheAvoidStats",
    "DISABLED",
    "DualPoolLeveler",
    "DualPoolStats",
    "EveryNRequestsTrigger",
    "LevelerSpec",
    "OnEraseTrigger",
    "PAPER_K_VALUES",
    "PAPER_THRESHOLDS",
    "PeriodicTrigger",
    "RandomSelection",
    "SWLConfig",
    "SWLStats",
    "SWLeveler",
    "SelectionPolicy",
    "SequentialSelection",
    "SoftWearLeveler",
    "SoftWearStats",
    "TriggerPolicy",
    "WearLeveler",
    "WearLevelingHost",
    "leveler_kinds",
    "make_selection_policy",
    "make_trigger_policy",
    "paper_sweep",
]
