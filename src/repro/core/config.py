"""Configuration record for the SW Leveler.

Bundles the paper's two tunables — the unevenness threshold ``T``
(Section 3.3) and the BET resolution exponent ``k`` (Section 3.2) — plus
the policy choices, into one value that experiment sweeps can enumerate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.leveler import SWLeveler, WearLevelingHost
from repro.core.policies import (
    TriggerPolicy,
    make_selection_policy,
    make_trigger_policy,
)

#: The sweeps of paper Section 5 (Figures 5-7, Table 4).
PAPER_THRESHOLDS = (100, 400, 700, 1000)
PAPER_K_VALUES = (0, 1, 2, 3)


@dataclass(frozen=True)
class SWLConfig:
    """Declarative SW Leveler configuration.

    Parameters
    ----------
    enabled:
        ``False`` produces the paper's baseline (plain FTL / NFTL).
    threshold:
        Unevenness-level threshold ``T``.
    k:
        BET set-size exponent (one flag per ``2^k`` blocks).
    selection:
        ``"sequential"`` (paper) or ``"random"`` (ablation).
    trigger:
        ``"on-erase"`` (default), ``"every-n-requests"``, or ``"periodic"``.
    trigger_param:
        ``n`` for the request trigger, ``period`` seconds for the timer.
    """

    enabled: bool = True
    threshold: float = 100.0
    k: int = 0
    selection: str = "sequential"
    trigger: str = "on-erase"
    trigger_param: float = 0.0

    def __post_init__(self) -> None:
        if self.enabled and self.threshold <= 0:
            raise ValueError(f"threshold must be positive, got {self.threshold}")
        if self.k < 0:
            raise ValueError(f"k must be >= 0, got {self.k}")

    def label(self) -> str:
        """Row label in the paper's style, e.g. ``SWL+k=0+T=100``."""
        if not self.enabled:
            return "baseline"
        return f"SWL+k={self.k}+T={int(self.threshold)}"

    def _make_trigger(self) -> TriggerPolicy:
        return make_trigger_policy(self.trigger, self.trigger_param)

    def build(
        self,
        num_blocks: int,
        host: WearLevelingHost,
        *,
        rng: random.Random | None = None,
    ) -> SWLeveler | None:
        """Instantiate the leveler, or ``None`` when disabled."""
        if not self.enabled:
            return None
        return SWLeveler(
            num_blocks,
            host,
            threshold=self.threshold,
            k=self.k,
            selection=make_selection_policy(self.selection),
            trigger=self._make_trigger(),
            rng=rng,
        )


#: Baseline (no static wear leveling) configuration.
DISABLED = SWLConfig(enabled=False)


def paper_sweep() -> list[SWLConfig]:
    """All (k, T) combinations evaluated in paper Figures 5-7."""
    return [
        SWLConfig(threshold=t, k=k)
        for k in PAPER_K_VALUES
        for t in PAPER_THRESHOLDS
    ]
