"""Rendering simulation results in the paper's table/figure layouts.

Each helper takes :class:`~repro.sim.engine.SimResult` objects and emits
rows shaped like the corresponding paper exhibit, so benchmark output can
be compared against the publication side by side.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.engine import SimResult
from repro.sim.metrics import improvement_ratio, increased_ratio
from repro.util.tables import format_table


def table4_rows(results: Sequence[SimResult]) -> list[list[object]]:
    """Rows of paper Table 4: label, Avg, Dev, Max erase counts."""
    return [
        [result.label, *result.erase_distribution.row()] for result in results
    ]


def format_table4(results: Sequence[SimResult], *, title: str | None = None) -> str:
    return format_table(
        ["Configuration", "Avg.", "Dev.", "Max."],
        table4_rows(results),
        title=title or "Erase-count distribution (paper Table 4 layout)",
    )


def fig5_rows(
    baseline: SimResult, swl_results: Sequence[SimResult]
) -> list[list[object]]:
    """Rows of a Figure 5 sub-plot: first failure time plus improvement %.

    A run that never failed within its request cap reports ``>= observed``
    (the cap bounds the measurement, not the system).
    """
    rows: list[list[object]] = []
    base_years = baseline.first_failure_years

    def cell(result: SimResult) -> object:
        years = result.first_failure_years
        if years is None:
            return f">{result.sim_time / (365 * 86400):.2f}"
        return round(years, 3)

    rows.append([baseline.label, cell(baseline), "-"])
    for result in swl_results:
        years = result.first_failure_years
        if years is None or base_years is None:
            rows.append([result.label, cell(result), "n/a"])
        else:
            rows.append(
                [result.label, cell(result),
                 f"{improvement_ratio(years, base_years):+.1f}%"]
            )
    return rows


def format_fig5(
    baseline: SimResult,
    swl_results: Sequence[SimResult],
    *,
    title: str | None = None,
) -> str:
    return format_table(
        ["Configuration", "First failure (years)", "vs baseline"],
        fig5_rows(baseline, swl_results),
        title=title or "First failure time (paper Figure 5 layout)",
    )


def overhead_rows(
    baseline: SimResult, swl_results: Sequence[SimResult]
) -> list[list[object]]:
    """Rows of Figures 6-7: increased ratios of erases and copyings.

    The baseline plots at 100 %, matching the paper's y-axes.
    """
    rows: list[list[object]] = [[baseline.label, 100.0, 100.0]]
    for result in swl_results:
        erase_ratio = increased_ratio(result.total_erases, baseline.total_erases)
        if baseline.live_page_copies > 0:
            copy_ratio = increased_ratio(
                result.live_page_copies, baseline.live_page_copies
            )
        else:
            copy_ratio = float("inf") if result.live_page_copies else 100.0
        rows.append([result.label, round(erase_ratio, 2), round(copy_ratio, 2)])
    return rows


def format_overheads(
    baseline: SimResult,
    swl_results: Sequence[SimResult],
    *,
    title: str | None = None,
) -> str:
    return format_table(
        ["Configuration", "Block erases (%)", "Live-page copyings (%)"],
        overhead_rows(baseline, swl_results),
        title=title or "Increased overhead ratios (paper Figures 6-7 layout)",
    )
