"""Rendering simulation results in the paper's table/figure layouts.

Each helper takes :class:`~repro.sim.engine.SimResult` objects and emits
rows shaped like the corresponding paper exhibit, so benchmark output can
be compared against the publication side by side.
"""

from __future__ import annotations

from typing import Sequence

from repro.service.results import ServiceResult
from repro.sim.engine import SimResult
from repro.sim.metrics import improvement_ratio, increased_ratio
from repro.util.tables import format_table


def table4_rows(results: Sequence[SimResult]) -> list[list[object]]:
    """Rows of paper Table 4: label, Avg, Dev, Max erase counts."""
    return [
        [result.label, *result.erase_distribution.row()] for result in results
    ]


def format_table4(results: Sequence[SimResult], *, title: str | None = None) -> str:
    return format_table(
        ["Configuration", "Avg.", "Dev.", "Max."],
        table4_rows(results),
        title=title or "Erase-count distribution (paper Table 4 layout)",
    )


def fig5_rows(
    baseline: SimResult, swl_results: Sequence[SimResult]
) -> list[list[object]]:
    """Rows of a Figure 5 sub-plot: first failure time plus improvement %.

    A run that never failed within its request cap reports ``>= observed``
    (the cap bounds the measurement, not the system).
    """
    rows: list[list[object]] = []
    base_years = baseline.first_failure_years

    def cell(result: SimResult) -> object:
        years = result.first_failure_years
        if years is None:
            return f">{result.sim_time / (365 * 86400):.2f}"
        return round(years, 3)

    rows.append([baseline.label, cell(baseline), "-"])
    for result in swl_results:
        years = result.first_failure_years
        if years is None or base_years is None:
            rows.append([result.label, cell(result), "n/a"])
        else:
            rows.append(
                [result.label, cell(result),
                 f"{improvement_ratio(years, base_years):+.1f}%"]
            )
    return rows


def format_fig5(
    baseline: SimResult,
    swl_results: Sequence[SimResult],
    *,
    title: str | None = None,
) -> str:
    return format_table(
        ["Configuration", "First failure (years)", "vs baseline"],
        fig5_rows(baseline, swl_results),
        title=title or "First failure time (paper Figure 5 layout)",
    )


def overhead_rows(
    baseline: SimResult, swl_results: Sequence[SimResult]
) -> list[list[object]]:
    """Rows of Figures 6-7: increased ratios of erases and copyings.

    The baseline plots at 100 %, matching the paper's y-axes.
    """
    rows: list[list[object]] = [[baseline.label, 100.0, 100.0]]
    for result in swl_results:
        erase_ratio = increased_ratio(result.total_erases, baseline.total_erases)
        if baseline.live_page_copies > 0:
            copy_ratio = increased_ratio(
                result.live_page_copies, baseline.live_page_copies
            )
        else:
            copy_ratio = float("inf") if result.live_page_copies else 100.0
        rows.append([result.label, round(erase_ratio, 2), round(copy_ratio, 2)])
    return rows


def format_overheads(
    baseline: SimResult,
    swl_results: Sequence[SimResult],
    *,
    title: str | None = None,
) -> str:
    return format_table(
        ["Configuration", "Block erases (%)", "Live-page copyings (%)"],
        overhead_rows(baseline, swl_results),
        title=title or "Increased overhead ratios (paper Figures 6-7 layout)",
    )


def _ms(seconds: float) -> str:
    """Render a latency in milliseconds with sub-µs noise trimmed."""
    return f"{seconds * 1e3:.3f}"


def latency_rows(results: "Sequence[ServiceResult]") -> list[list[object]]:
    """Latency-percentile rows, one per service run.

    Percentile columns are milliseconds; ``Stalls`` counts arrivals that
    hit per-channel backpressure.  With an SWL-off baseline first and
    SWL-on runs after, the p95/p99 columns read directly as the tail
    interference the wear leveler adds.
    """
    return [
        [
            result.label,
            result.requests,
            _ms(result.latency.p50),
            _ms(result.latency.p95),
            _ms(result.latency.p99),
            _ms(result.latency.maximum),
            result.stalls,
        ]
        for result in results
    ]


LATENCY_HEADERS = [
    "Configuration", "Requests",
    "p50 (ms)", "p95 (ms)", "p99 (ms)", "Max (ms)", "Stalls",
]


def format_latency(
    results: "Sequence[ServiceResult]", *, title: str | None = None
) -> str:
    return format_table(
        LATENCY_HEADERS,
        latency_rows(results),
        title=title or "Request latency percentiles (service mode)",
    )


def channel_latency_rows(result: "ServiceResult") -> list[list[object]]:
    """Per-channel latency/queue rows for one service run."""
    return [
        [
            f"channel {stats.channel}",
            stats.served,
            _ms(stats.latency.p50),
            _ms(stats.latency.p95),
            _ms(stats.latency.p99),
            _ms(stats.latency.maximum),
            stats.peak_depth,
            stats.stalls,
        ]
        for stats in result.channel_stats
    ]


CHANNEL_LATENCY_HEADERS = [
    "Channel", "Served",
    "p50 (ms)", "p95 (ms)", "p99 (ms)", "Max (ms)", "Peak depth", "Stalls",
]


def format_channel_latency(
    result: "ServiceResult", *, title: str | None = None
) -> str:
    return format_table(
        CHANNEL_LATENCY_HEADERS,
        channel_latency_rows(result),
        title=title or f"Per-channel latency — {result.label}",
    )
