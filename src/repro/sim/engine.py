"""Trace-driven simulation engine: the closed-loop replay driver.

Replays a sector-granular request stream (finite trace or endless
resampled trace) against a wired storage backend, advancing a simulated
clock from the request timestamps, and stops on the first block wear-out
(for first-failure-time experiments, Figure 5), on a request budget, or on
a simulated-time horizon (for the 10-year runs behind Table 4 and
Figures 6-7).

The request-application mechanics live in
:class:`~repro.sim.core.RequestCore`, which this module's
:class:`Simulator` shares with the open-loop service engine
(:mod:`repro.service`).  The replay driver adds what the closed loop
needs on top: the :class:`~repro.sim.core.StopCondition`-governed
``run()`` loop and durable checkpointing (see :mod:`repro.ckpt`).
The historic names (``StopCondition``, ``WearSample``, ``SimResult``,
the decimation defaults) are re-exported here unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.flash.errors import PowerLossError
from repro.obs.heatmap import WearHeatmap
from repro.sim.core import (
    DEFAULT_MAX_HEATMAPS,
    DEFAULT_MAX_SAMPLES,
    RequestCore,
    SimResult,
    StopCondition,
    WearSample,
)
from repro.traces.model import Request

__all__ = [
    "DEFAULT_MAX_HEATMAPS",
    "DEFAULT_MAX_SAMPLES",
    "RequestCore",
    "SimResult",
    "Simulator",
    "StopCondition",
    "WearSample",
]


class Simulator(RequestCore):
    """Replays requests against one storage backend.

    A thin closed-loop driver over :class:`~repro.sim.core.RequestCore`
    (which documents the constructor parameters): each request completes
    instantly at its trace timestamp, so the replay measures wear and
    endurance, not service latency — the paper's Section 5 protocol.
    """

    def run(
        self,
        requests: Iterable[Request],
        stop: StopCondition,
        *,
        label: str | None = None,
    ) -> SimResult:
        """Replay ``requests`` until a stop criterion fires; summarize."""
        backend = self.stack
        check_failure = stop.until_first_failure
        iterator: Iterator[Request] = iter(requests)
        for request in iterator:
            if stop.max_time is not None and request.time > stop.max_time:
                break
            try:
                self.apply(request)
            except PowerLossError:
                # A scheduled power loss from an attached fault injector
                # ends the replay; the partial result is still reported.
                self.power_lost = True
                break
            if check_failure and backend.first_failure is not None:
                break
            if stop.max_requests is not None and self.requests_done >= stop.max_requests:
                break
        return self.result(label=label)

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Freeze the replay bookkeeping (not the backend — see the stack).

        ``sample_interval`` / ``heatmap_interval`` are mutable (decimation
        doubles them), so the *current* values are captured together with
        the next-capture deadlines and the decimated series themselves.
        """
        return {
            "clock": self.clock,
            "requests_done": self.requests_done,
            "pages_written": self.pages_written,
            "pages_read": self.pages_read,
            "power_lost": self.power_lost,
            "first_failure_clock": self.first_failure_clock,
            "sample_interval": self.sample_interval,
            "heatmap_interval": self.heatmap_interval,
            # inf (sampling disabled) is not valid JSON; ride as None.
            "next_sample": (
                None if self._next_sample == float("inf") else self._next_sample
            ),
            "next_heatmap": (
                None if self._next_heatmap == float("inf") else self._next_heatmap
            ),
            "timeline": [
                [s.time, s.average, s.deviation, s.maximum, s.total_erases]
                for s in self.timeline
            ],
            "heatmaps": [h.as_dict() for h in self.heatmaps],
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state` (the backend restores itself)."""
        self.clock = state["clock"]  # type: ignore[assignment]
        self.requests_done = state["requests_done"]  # type: ignore[assignment]
        self.pages_written = state["pages_written"]  # type: ignore[assignment]
        self.pages_read = state["pages_read"]  # type: ignore[assignment]
        self.power_lost = bool(state["power_lost"])
        self.first_failure_clock = state["first_failure_clock"]  # type: ignore[assignment]
        self.sample_interval = state["sample_interval"]  # type: ignore[assignment]
        self.heatmap_interval = state["heatmap_interval"]  # type: ignore[assignment]
        self._next_sample = (
            state["next_sample"] if state["next_sample"] is not None  # type: ignore[assignment]
            else float("inf")
        )
        self._next_heatmap = (
            state["next_heatmap"] if state["next_heatmap"] is not None  # type: ignore[assignment]
            else float("inf")
        )
        self.timeline = [
            WearSample(
                time=time, average=average, deviation=deviation,
                maximum=maximum, total_erases=total,
            )
            for time, average, deviation, maximum, total in state["timeline"]  # type: ignore[union-attr]
        ]
        self.heatmaps = [
            WearHeatmap(
                ts=h["ts"],
                num_blocks=h["num_blocks"],
                bin_width=h["bin_width"],
                cells=tuple(h["cells"]),
                min_count=h["min_count"],
                max_count=h["max_count"],
                total_erases=h["total_erases"],
            )
            for h in state["heatmaps"]  # type: ignore[union-attr]
        ]
