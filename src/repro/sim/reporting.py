"""Markdown report generation from simulation results.

Turns a set of :class:`~repro.sim.engine.SimResult` objects into a
self-contained markdown document — summary table, per-run details,
wear-evolution sparklines — suitable for dropping into a lab notebook or
a pull request.  Used by ``python -m repro sweep --report``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.analysis.figures import sparkline
from repro.sim.engine import SimResult
from repro.sim.metrics import improvement_ratio

if TYPE_CHECKING:
    from repro.ckpt.supervisor import CampaignReport
    from repro.endurance.matrix import EnduranceCellResult
    from repro.fault.campaign import FaultCampaignResult
    from repro.service.results import ServiceResult
    from repro.sim.metrics import TenantUsage


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def markdown_report(
    results: Sequence[SimResult],
    *,
    title: str = "Wear-leveling simulation report",
    baseline_label: str | None = None,
) -> str:
    """Render ``results`` as a markdown document.

    ``baseline_label`` names the row the improvement column is computed
    against; defaults to the first result.
    """
    if not results:
        raise ValueError("no results to report")
    baseline = results[0]
    if baseline_label is not None:
        matches = [r for r in results if r.label == baseline_label]
        if not matches:
            raise ValueError(f"no result labelled {baseline_label!r}")
        baseline = matches[0]

    def failure_cell(result: SimResult) -> str:
        if result.first_failure_time is None:
            return f"> {result.sim_time / 86_400:.2f} d (no failure)"
        return f"{result.first_failure_time / 86_400:.2f} d"

    def gain_cell(result: SimResult) -> str:
        if result is baseline:
            return "—"
        if result.first_failure_time is None or baseline.first_failure_time is None:
            return "n/a"
        return f"{improvement_ratio(result.first_failure_time, baseline.first_failure_time):+.1f}%"

    summary_rows = []
    for result in results:
        distribution = result.erase_distribution
        summary_rows.append(
            [result.label,
             failure_cell(result),
             gain_cell(result),
             f"{distribution.average:.0f}",
             f"{distribution.deviation:.0f}",
             distribution.maximum,
             result.total_erases,
             result.live_page_copies]
        )

    sections = [
        f"# {title}",
        "",
        "## Summary",
        "",
        _markdown_table(
            ["Configuration", "First failure", "vs baseline",
             "Avg erases", "Dev", "Max", "Total erases", "Live copies"],
            summary_rows,
        ),
    ]

    for result in results:
        sections += ["", f"## {result.label}", ""]
        detail_rows = [
            ["requests replayed", result.requests],
            ["pages written", result.pages_written],
            ["simulated time", f"{result.sim_time / 86_400:.2f} days"],
            ["garbage collections", result.gc_runs],
            ["device busy time", f"{result.device_busy_time:.1f} s"],
        ]
        if result.channels > 1:
            detail_rows.append(["channels", result.channels])
        for key, value in sorted(result.swl_stats.items()):
            if key == "findex_history":
                continue
            detail_rows.append([f"SWL {key.replace('_', ' ')}", value])
        if result.power_lost:
            detail_rows.append(["power lost", "yes (replay ended early)"])
        for key, value in sorted(result.fault_stats.items()):
            detail_rows.append([f"fault {key.replace('_', ' ')}", value])
        sections.append(_markdown_table(["Metric", "Value"], detail_rows))
        if result.shard_erase_distributions:
            shard_rows: list[list[object]] = [
                [f"shard {index}",
                 f"{dist.average:.0f}",
                 f"{dist.deviation:.0f}",
                 dist.maximum,
                 dist.minimum,
                 dist.total]
                for index, dist in enumerate(result.shard_erase_distributions)
            ]
            merged = result.erase_distribution
            shard_rows.append(
                ["merged",
                 f"{merged.average:.0f}",
                 f"{merged.deviation:.0f}",
                 merged.maximum,
                 merged.minimum,
                 merged.total]
            )
            sections += [
                "",
                "Per-shard erase distributions:",
                "",
                _markdown_table(
                    ["Shard", "Avg", "Dev", "Max", "Min", "Total"],
                    shard_rows,
                ),
            ]
        if result.timeline:
            deviations = [sample.deviation for sample in result.timeline]
            maxima = [sample.maximum for sample in result.timeline]
            sections += [
                "",
                "Wear evolution (first to last sample):",
                "",
                f"- deviation `{sparkline(deviations)}` "
                f"({deviations[0]:.0f} → {deviations[-1]:.0f})",
                f"- max erase `{sparkline([float(m) for m in maxima])}` "
                f"({maxima[0]} → {maxima[-1]})",
            ]
    sections.append("")
    return "\n".join(sections)


def save_report(
    path: str,
    results: Sequence[SimResult],
    **kwargs: object,
) -> None:
    """Write :func:`markdown_report` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(markdown_report(results, **kwargs))  # type: ignore[arg-type]


def service_markdown_report(
    results: "Sequence[ServiceResult]",
    *,
    title: str = "Service-mode latency report",
    baseline_label: str | None = None,
) -> str:
    """Render open-loop service runs as a markdown document.

    The summary table compares request-latency percentiles across
    configurations — with an SWL-off baseline this is the paper's tail
    interference story told in milliseconds — followed by per-channel
    breakdowns and the wear view of each run.  ``baseline_label`` names
    the row the p99 delta column is computed against; defaults to the
    first result.
    """
    if not results:
        raise ValueError("no results to report")
    baseline = results[0]
    if baseline_label is not None:
        matches = [r for r in results if r.label == baseline_label]
        if not matches:
            raise ValueError(f"no result labelled {baseline_label!r}")
        baseline = matches[0]

    def ms(seconds: float) -> str:
        return f"{seconds * 1e3:.3f}"

    def p99_delta(result: "ServiceResult") -> str:
        if result is baseline:
            return "—"
        if baseline.latency.p99 <= 0:
            return "n/a"
        ratio = (result.latency.p99 / baseline.latency.p99 - 1.0) * 100.0
        return f"{ratio:+.1f}%"

    summary_rows = [
        [result.label,
         result.requests,
         ms(result.latency.p50),
         ms(result.latency.p95),
         ms(result.latency.p99),
         p99_delta(result),
         ms(result.latency.maximum),
         result.stalls]
        for result in results
    ]
    sections = [
        f"# {title}",
        "",
        "Open-loop service runs: identical request streams and arrival",
        "times per configuration, so latency differences are cleaning and",
        "wear-leveling interference (see DESIGN.md §5g).",
        "",
        "## Latency summary",
        "",
        _markdown_table(
            ["Configuration", "Requests", "p50 (ms)", "p95 (ms)",
             "p99 (ms)", "p99 vs baseline", "Max (ms)", "Stalls"],
            summary_rows,
        ),
    ]
    for result in results:
        sections += ["", f"## {result.label}", ""]
        detail_rows: list[list[object]] = [
            ["requests served", result.requests],
            ["queue depth bound", result.queue_depth],
            ["completion horizon", f"{result.completion_time:.2f} s"],
            ["service throughput",
             f"{result.service_throughput:.0f} req/s"],
            ["mean latency", f"{ms(result.latency.mean)} ms"],
            ["backpressure stalls", result.stalls],
            ["garbage collections", result.replay.gc_runs],
            ["total erases", result.replay.total_erases],
        ]
        for key, value in sorted(result.replay.swl_stats.items()):
            if key == "findex_history":
                continue
            detail_rows.append([f"SWL {key.replace('_', ' ')}", value])
        if result.replay.power_lost:
            detail_rows.append(["power lost", "yes (run ended early)"])
        sections.append(_markdown_table(["Metric", "Value"], detail_rows))
        sections += [
            "",
            "Per-channel latency:",
            "",
            _markdown_table(
                ["Channel", "Served", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                 "Max (ms)", "Peak depth", "Stalls", "Stall time (s)"],
                [
                    [f"channel {stats.channel}",
                     stats.served,
                     ms(stats.latency.p50),
                     ms(stats.latency.p95),
                     ms(stats.latency.p99),
                     ms(stats.latency.maximum),
                     stats.peak_depth,
                     stats.stalls,
                     f"{stats.stall_time:.2f}"]
                    for stats in result.channel_stats
                ],
            ),
        ]
    sections.append("")
    return "\n".join(sections)


def save_service_report(
    path: str,
    results: "Sequence[ServiceResult]",
    **kwargs: object,
) -> None:
    """Write :func:`service_markdown_report` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(
            service_markdown_report(results, **kwargs)  # type: ignore[arg-type]
        )


def campaign_markdown_report(
    campaign: "CampaignReport",
    *,
    title: str = "Wear-leveling simulation report",
    baseline_label: str | None = None,
) -> str:
    """Render a supervised campaign, degrading gracefully on quarantine.

    The document is :func:`markdown_report` over the cells that finished,
    prefixed with a supervision table (status, attempt counts, the seeds
    each attempt ran with) and a quarantine section naming every cell
    that exhausted its retries — instead of the whole report failing
    because one cell did.
    """
    finished = [cell for cell in campaign.cells if cell.result is not None]
    supervision_rows = [
        [
            cell.label,
            "ok" if cell.ok else "**quarantined**",
            cell.attempts,
            ", ".join(str(seed) for seed in cell.seeds) or "—",
        ]
        for cell in campaign.cells
    ]
    sections = [
        f"# {title}",
        "",
        "## Supervision",
        "",
        f"{len(finished)}/{len(campaign.cells)} cells finished"
        + ("" if campaign.ok
           else f"; {len(campaign.quarantined)} quarantined"),
        "",
        _markdown_table(
            ["Configuration", "Status", "Attempts", "Seeds"],
            supervision_rows,
        ),
    ]
    if campaign.quarantined:
        sections += ["", "## Quarantined cells", ""]
        sections += [
            f"- `{cell.label}` after {cell.attempts} attempt(s): "
            f"{cell.error or 'unknown failure'}"
            for cell in campaign.quarantined
        ]
    if finished:
        baseline = baseline_label
        if baseline is not None and all(
            cell.label != baseline for cell in finished
        ):
            baseline = None  # the baseline itself was quarantined
        body = markdown_report(
            [cell.result for cell in finished],  # type: ignore[misc]
            title=title,
            baseline_label=baseline,
        )
        # Drop the body's duplicate H1; keep everything from "## Summary".
        sections += ["", body.split("\n", 2)[2]]
    else:
        sections += ["", "No cell produced a result.", ""]
    return "\n".join(sections)


def fault_campaign_report(
    campaign: "FaultCampaignResult",
    *,
    title: str = "Fault-injection campaign report",
) -> str:
    """Render a :class:`~repro.fault.campaign.FaultCampaignResult` as markdown.

    One document per campaign: the pass/fail gate up front, then the soak
    phase (injected faults vs recovery work) and the power-loss sweep.
    """
    verdict = "**PASS** — zero invariant violations" if campaign.ok else (
        f"**FAIL** — {len(campaign.violations)} violation(s)"
    )
    crash = campaign.crash_report
    sections = [
        f"# {title}",
        "",
        f"Configuration: `{campaign.label}` — {verdict}",
        "",
        "## Soak phase (transient faults under load)",
        "",
        _markdown_table(
            ["Metric", "Value"],
            [
                ["host writes acknowledged", campaign.soak_writes],
                ["blocks retired", campaign.retired_blocks],
                ["unrecovered faults", campaign.unrecovered_faults],
                ["recovery erase overhead",
                 f"{campaign.recovery_summary().recovery_erase_overhead:.2f}%"],
                ["data-integrity violations", len(campaign.soak_violations)],
            ]
            + [
                [f"injected {key.replace('_', ' ')}", value]
                for key, value in sorted(campaign.injector_stats.items())
            ]
            + [
                [f"driver {key.replace('_', ' ')}", value]
                for key, value in sorted(campaign.recovery_stats.items())
            ],
        ),
        "",
        "## Power-loss sweep (crash consistency)",
        "",
        _markdown_table(
            ["Metric", "Value"],
            [
                ["loss points swept", len(crash.verdicts)],
                ["losses that fired", crash.crashes],
                ["BET restores", sum(1 for v in crash.verdicts if v.bet_restored)],
                ["mappings recovered", sum(v.mappings_recovered for v in crash.verdicts)],
                ["invariant violations", len(crash.violations)],
            ],
        ),
    ]
    if campaign.violations:
        sections += ["", "## Violations", ""]
        sections += [f"- {violation}" for violation in campaign.violations]
    sections.append("")
    return "\n".join(sections)


def tenant_attribution_table(
    tenants: "Sequence[TenantUsage]", replay: SimResult
) -> str:
    """Per-tenant usage rows plus the device-total row they must sum to.

    The final row restates the device's own counters; the conservation
    invariant (DESIGN.md §5h) says each column above it sums exactly to
    that row.
    """
    rows: list[list[object]] = [
        [
            tenant.name,
            tenant.requests,
            tenant.pages_written,
            tenant.pages_read,
            tenant.erases,
            f"{tenant.busy_time:.3f}",
        ]
        for tenant in tenants
    ]
    rows.append(
        [
            "**device**",
            replay.requests,
            replay.pages_written,
            replay.pages_read,
            replay.total_erases,
            f"{replay.device_busy_time:.3f}",
        ]
    )
    return _markdown_table(
        ["Tenant", "Requests", "Pages written", "Pages read",
         "Erases", "Busy time (s)"],
        rows,
    )


def endurance_markdown_report(
    results: "Sequence[EnduranceCellResult]",
    *,
    title: str = "Endurance projection report",
    tenants: "Sequence[TenantUsage] | None" = None,
    tenant_replay: SimResult | None = None,
) -> str:
    """Render endurance-matrix cells as a markdown document.

    One row per ``workload × policy`` cell: measured WAF and wear skew,
    projected TBW, the days the device lasts at a sustained 1 DWPD, and
    the extrapolated first-failure horizon.  ``tenants`` (with the
    ``tenant_replay`` that produced them) appends a per-tenant wear
    attribution section.
    """
    if not results:
        raise ValueError("no results to report")
    gb = 1e9
    rows: list[list[object]] = [
        [
            projection.label,
            f"{projection.waf:.3f}",
            f"{projection.erase_average:.1f}",
            projection.erase_maximum,
            f"{projection.wear_skew:.2f}",
            f"{projection.tbw_bytes / gb:.2f}",
            f"{projection.days_at_one_dwpd:.1f}",
            f"{projection.projected_first_failure_days:.1f}",
        ]
        for projection in (result.projection for result in results)
    ]
    sections = [
        f"# {title}",
        "",
        "Projections extrapolate each cell's measured erase rates to the "
        "geometry's P/E-cycle budget (WAF-aware chokepoint: "
        "`repro.endurance.projection.first_failure_horizon`).  TBW is "
        "host bytes writable before the hottest block exhausts its "
        "budget at the measured skew.",
        "",
        _markdown_table(
            ["Cell", "WAF", "Erase avg", "Erase max", "Wear skew",
             "TBW (GB)", "Days @ 1 DWPD", "First failure (days)"],
            rows,
        ),
    ]
    if tenants is not None:
        if tenant_replay is None:
            raise ValueError("tenants need the replay that produced them")
        sections += [
            "",
            "## Per-tenant wear attribution",
            "",
            "Each column sums exactly to the device row (conservation "
            "invariant).",
            "",
            tenant_attribution_table(tenants, tenant_replay),
        ]
    sections.append("")
    return "\n".join(sections)


def save_endurance_report(
    path: str,
    results: "Sequence[EnduranceCellResult]",
    **kwargs: object,
) -> None:
    """Write :func:`endurance_markdown_report` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(endurance_markdown_report(results, **kwargs))  # type: ignore[arg-type]
