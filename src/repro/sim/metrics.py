"""Evaluation metrics — the quantities of paper Section 5.

* **Endurance** (Section 5.2): the *first failure time* ("the first time to
  wear out any block") in simulated years, and the distribution of
  per-block erase counts (average, standard deviation, maximum — Table 4).
* **Extra overhead** (Section 5.3): the increased ratios of block erases
  and live-page copyings of an SWL run relative to its baseline
  (Figures 6 and 7, where the baseline sits at 100 %).

Hot-path accounting: every summary here derives from three exact integer
moments — block count ``n``, total ``sum(c)``, and second moment
``sum(c^2)`` — so the same floating-point values are produced whether the
moments come from a one-shot :meth:`EraseDistribution.from_counts` scan,
from an exact :meth:`EraseDistribution.merge` of per-shard parts, or from
a :class:`WearAccumulator` maintained incrementally at erase time (the
O(1)-per-erase path the simulation engine samples).  Integer arithmetic
is order-independent and overflow-free in Python, which is what makes the
three paths bit-identical (see DESIGN.md, hot-path accounting invariants).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

SECONDS_PER_YEAR = 365.0 * 86_400.0


def _variance(blocks: int, total: int, sum_sq: int) -> float:
    """Population variance from exact integer moments.

    ``n * sum(c^2) - total^2`` is a non-negative integer (Cauchy-Schwarz),
    so the single int/int division is the only rounding step — the result
    is the correctly-rounded variance, independent of summation order.
    """
    return (blocks * sum_sq - total * total) / (blocks * blocks)


@dataclass(frozen=True)
class EraseDistribution:
    """Summary of per-block erase counts (the columns of paper Table 4).

    ``blocks`` records how many blocks the summary covers; it is what
    makes :meth:`merge` exact (0 on legacy instances built field-by-field).
    ``sum_sq`` carries the exact second moment ``sum(c^2)`` so merging
    stays in integer arithmetic; it is ``None`` on legacy field-by-field
    instances, for which :meth:`merge` falls back to reconstructing the
    moment from ``deviation`` and ``average``.
    """

    average: float
    deviation: float
    maximum: int
    minimum: int
    total: int
    blocks: int = 0
    sum_sq: Optional[int] = None

    @classmethod
    def from_counts(cls, counts: Sequence[int]) -> "EraseDistribution":
        """One-shot O(n) scan — the property-tested reference derivation."""
        if not counts:
            raise ValueError("no erase counts")
        total = 0
        sum_sq = 0
        for count in counts:
            total += count
            sum_sq += count * count
        return cls.from_moments(
            blocks=len(counts),
            total=total,
            sum_sq=sum_sq,
            maximum=max(counts),
            minimum=min(counts),
        )

    @classmethod
    def from_moments(
        cls,
        *,
        blocks: int,
        total: int,
        sum_sq: int,
        maximum: int,
        minimum: int,
    ) -> "EraseDistribution":
        """Build from exact integer moments (the incremental hot path).

        This is the single chokepoint where integers become floats:
        :meth:`from_counts`, :meth:`merge`, and
        :meth:`WearAccumulator.distribution` all funnel through it, which
        is what guarantees the three derivations agree bit for bit.
        """
        if blocks <= 0:
            raise ValueError(f"blocks must be positive, got {blocks}")
        return cls(
            average=total / blocks,
            deviation=math.sqrt(_variance(blocks, total, sum_sq)),
            maximum=maximum,
            minimum=minimum,
            total=total,
            blocks=blocks,
            sum_sq=sum_sq,
        )

    @classmethod
    def merge(cls, parts: Sequence["EraseDistribution"]) -> "EraseDistribution":
        """Combine per-shard distributions into the array-wide one.

        Exact (not an approximation): when every part carries its integer
        second moment the merge adds integers and equals
        :meth:`from_counts` over the concatenated counts bit for bit.
        Legacy parts without ``sum_sq`` are handled by recovering the
        moment from ``E[x^2] = dev^2 + avg^2``, exact up to
        floating-point rounding.
        """
        if not parts:
            raise ValueError("no distributions to merge")
        if any(part.blocks <= 0 for part in parts):
            raise ValueError(
                "merge requires block counts; all parts must come from "
                "from_counts()"
            )
        blocks = sum(part.blocks for part in parts)
        total = sum(part.total for part in parts)
        maximum = max(part.maximum for part in parts)
        minimum = min(part.minimum for part in parts)
        if all(part.sum_sq is not None for part in parts):
            sum_sq = sum(part.sum_sq for part in parts if part.sum_sq is not None)
            return cls.from_moments(
                blocks=blocks,
                total=total,
                sum_sq=sum_sq,
                maximum=maximum,
                minimum=minimum,
            )
        average = total / blocks
        second_moment = sum(
            part.blocks * (part.deviation ** 2 + part.average ** 2)
            for part in parts
        )
        variance = max(0.0, second_moment / blocks - average ** 2)
        return cls(
            average=average,
            deviation=math.sqrt(variance),
            maximum=maximum,
            minimum=minimum,
            total=total,
            blocks=blocks,
        )

    def row(self) -> List[float]:
        """[Avg, Dev, Max] — the row layout of paper Table 4."""
        return [round(self.average), round(self.deviation), self.maximum]


class WearAccumulator:
    """O(1)-per-erase running summary of one device's erase counts.

    Replaces the O(num_blocks) ``from_counts`` rescan the engine used to
    pay on every :class:`~repro.sim.engine.WearSample`: the chip calls
    :meth:`record_erase` as part of each block erase, and
    :meth:`distribution` then snapshots average/deviation/max/min/total in
    O(1) via the same exact integer moments ``from_counts`` computes.

    Minimum tracking keeps a histogram of erase-count values (a dict of
    ``count -> blocks at that count``): an erase moves one block from
    bucket ``c`` to ``c + 1``; when the erased block drains the minimum's
    bucket the new minimum is exactly ``c + 1``, because every other block
    already sits at or above it.  The histogram holds at most
    ``max - min + 1`` entries — bounded by the value spread, not by device
    size.

    The accumulator can additionally maintain per-bin block-index sums for
    :class:`~repro.obs.heatmap.WearHeatmap` snapshots: after
    :meth:`ensure_bins` each erase also costs one list increment, and a
    heatmap snapshot costs O(bins) instead of an O(num_blocks) copy.
    """

    __slots__ = (
        "blocks", "total", "sum_sq", "maximum", "minimum",
        "_hist", "bin_width", "_bin_sums",
    )

    def __init__(self, blocks: int) -> None:
        if blocks <= 0:
            raise ValueError(f"blocks must be positive, got {blocks}")
        self.blocks = blocks
        self.total = 0
        self.sum_sq = 0
        self.maximum = 0
        self.minimum = 0
        self._hist: Dict[int, int] = {0: blocks}
        #: Blocks per heatmap bin; 0 until :meth:`ensure_bins` is called.
        self.bin_width = 0
        self._bin_sums: List[int] = []

    def record_erase(self, block: int, previous: int) -> None:
        """Account one erase of ``block`` whose count was ``previous``.

        Must be called exactly once per increment of the device's
        per-block erase counter (the chip's erase path is the single call
        site), with ``previous`` the pre-increment count.
        """
        new = previous + 1
        self.total += 1
        self.sum_sq += (previous << 1) + 1   # new^2 - previous^2
        if new > self.maximum:
            self.maximum = new
        hist = self._hist
        remaining = hist[previous] - 1
        if remaining:
            hist[previous] = remaining
        else:
            del hist[previous]
            if previous == self.minimum:
                # The last block at the old minimum just moved up; every
                # other block is already at >= previous + 1.
                self.minimum = new
        hist[new] = hist.get(new, 0) + 1
        if self.bin_width:
            self._bin_sums[block // self.bin_width] += 1

    def distribution(self) -> EraseDistribution:
        """O(1) snapshot, bit-identical to ``from_counts`` on the counts."""
        return EraseDistribution.from_moments(
            blocks=self.blocks,
            total=self.total,
            sum_sq=self.sum_sq,
            maximum=self.maximum,
            minimum=self.minimum,
        )

    def ensure_bins(self, width: int, counts: Sequence[int]) -> None:
        """Start (or re-shape) per-bin sum maintenance at ``width``.

        The first call — and any call changing the width — rebuilds the
        bin sums from ``counts`` in O(num_blocks); every later erase then
        keeps them current in O(1).  Callers pass the device's live
        per-block counts so a mid-run reconfiguration stays exact.
        """
        if width <= 0:
            raise ValueError(f"bin width must be positive, got {width}")
        if width == self.bin_width:
            return
        if len(counts) != self.blocks:
            raise ValueError(
                f"expected {self.blocks} counts, got {len(counts)}"
            )
        sums = [0] * (-(-self.blocks // width))
        for block, count in enumerate(counts):
            sums[block // width] += count
        self.bin_width = width
        self._bin_sums = sums

    @property
    def bin_sums(self) -> List[int]:
        """Per-bin erase-count sums (empty until :meth:`ensure_bins`)."""
        return self._bin_sums

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-friendly view of every mutable field.

        The histogram is emitted as sorted ``[count, blocks]`` pairs so
        the snapshot is canonical: two accumulators with equal state
        produce byte-identical encodings regardless of insertion order.
        """
        return {
            "blocks": self.blocks,
            "total": self.total,
            "sum_sq": self.sum_sq,
            "maximum": self.maximum,
            "minimum": self.minimum,
            "hist": [[count, blocks] for count, blocks in sorted(self._hist.items())],
            "bin_width": self.bin_width,
            "bin_sums": list(self._bin_sums),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Overwrite the accumulator in place from :meth:`snapshot_state`.

        Raises ``ValueError`` when the snapshot covers a different number
        of blocks — restoring wear state onto the wrong geometry.
        """
        if state["blocks"] != self.blocks:
            raise ValueError(
                f"wear snapshot covers {state['blocks']} blocks, "
                f"accumulator has {self.blocks}"
            )
        self.total = state["total"]
        self.sum_sq = state["sum_sq"]
        self.maximum = state["maximum"]
        self.minimum = state["minimum"]
        self._hist = {count: blocks for count, blocks in state["hist"]}
        self.bin_width = state["bin_width"]
        self._bin_sums = list(state["bin_sums"])

    def __repr__(self) -> str:
        return (
            f"WearAccumulator(blocks={self.blocks}, total={self.total}, "
            f"max={self.maximum}, min={self.minimum})"
        )


@dataclass
class TenantUsage:
    """Per-tenant resource attribution over one multi-tenant run.

    Filled by the runners in :mod:`repro.workloads.runner` by diffing
    the backend's counters around every request application, so GC and
    SWL work triggered by a request is charged to the tenant that
    issued it.  Because every request is applied on behalf of exactly
    one tenant, the **conservation invariant** holds by construction:
    summing any field over all tenants reproduces the device total
    (asserted by the tenant-attribution tests and the CI scale gate).
    """

    name: str
    requests: int = 0
    pages_written: int = 0
    pages_read: int = 0
    erases: int = 0
    busy_time: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "requests": self.requests,
            "pages_written": self.pages_written,
            "pages_read": self.pages_read,
            "erases": self.erases,
            "busy_time": self.busy_time,
        }

    @staticmethod
    def totals(tenants: Sequence["TenantUsage"]) -> "TenantUsage":
        """Field-wise sum — the device-side of the conservation check."""
        total = TenantUsage(name="total")
        for tenant in tenants:
            total.requests += tenant.requests
            total.pages_written += tenant.pages_written
            total.pages_read += tenant.pages_read
            total.erases += tenant.erases
            total.busy_time += tenant.busy_time
        return total


def first_failure_years(sim_time: Optional[float]) -> Optional[float]:
    """Convert a simulated first-failure instant to years (Figure 5 y-axis)."""
    if sim_time is None:
        return None
    return sim_time / SECONDS_PER_YEAR


def increased_ratio(value: float, baseline: float) -> float:
    """Percentage of ``value`` relative to ``baseline`` (Figures 6-7 y-axis).

    The paper plots the baseline at 100 %; an SWL run with 2 % extra block
    erases plots at 102 %.
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * value / baseline


def improvement_ratio(value: float, baseline: float) -> float:
    """Relative improvement in percent (the paper's "+51.2%" style numbers)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * (value - baseline) / baseline


def unevenness_of(counts: Sequence[int]) -> float:
    """Max/mean erase-count ratio: a scale-free wear-imbalance indicator."""
    if not counts:
        raise ValueError("no erase counts")
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 0.0
    return max(counts) / mean


@dataclass(frozen=True)
class FaultRecoverySummary:
    """Cost of fault recovery during one run or campaign.

    Relates what the injector delivered to what the driver spent
    surviving it — the robustness analogue of the Section 5.3 overhead
    ratios.  Built from the ``fault_*`` / recovery counters collected by
    :class:`~repro.sim.engine.SimResult` or a fault campaign.
    """

    faults_injected: int         #: erase + program faults delivered
    erase_retries: int           #: extra erase attempts spent recovering
    recovery_copies: int         #: live pages moved off failing blocks
    recovery_erases: int         #: erases spent draining/condemning blocks
    blocks_retired: int          #: blocks permanently taken out of service
    total_erases: int            #: all block erases in the run

    @property
    def recovery_erase_overhead(self) -> float:
        """Recovery erases as a percentage of all erases (0 when none)."""
        if self.total_erases <= 0:
            return 0.0
        return 100.0 * self.recovery_erases / self.total_erases

    @classmethod
    def from_stats(
        cls,
        injector_stats: Dict[str, int],
        recovery_stats: Dict[str, int],
        *,
        blocks_retired: int = 0,
        total_erases: int = 0,
    ) -> "FaultRecoverySummary":
        """Assemble from injector/driver stat dicts (campaign layout)."""
        return cls(
            faults_injected=injector_stats.get("erase_faults", 0)
            + injector_stats.get("program_faults", 0),
            erase_retries=recovery_stats.get("erase_retries", 0),
            recovery_copies=recovery_stats.get("recovery_copies", 0),
            recovery_erases=recovery_stats.get("recovery_erases", 0),
            blocks_retired=blocks_retired,
            total_erases=total_erases,
        )
