"""Evaluation metrics — the quantities of paper Section 5.

* **Endurance** (Section 5.2): the *first failure time* ("the first time to
  wear out any block") in simulated years, and the distribution of
  per-block erase counts (average, standard deviation, maximum — Table 4).
* **Extra overhead** (Section 5.3): the increased ratios of block erases
  and live-page copyings of an SWL run relative to its baseline
  (Figures 6 and 7, where the baseline sits at 100 %).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

SECONDS_PER_YEAR = 365.0 * 86_400.0


@dataclass(frozen=True)
class EraseDistribution:
    """Summary of per-block erase counts (the columns of paper Table 4)."""

    average: float
    deviation: float
    maximum: int
    minimum: int
    total: int

    @classmethod
    def from_counts(cls, counts: Sequence[int]) -> "EraseDistribution":
        if not counts:
            raise ValueError("no erase counts")
        total = sum(counts)
        average = total / len(counts)
        variance = sum((c - average) ** 2 for c in counts) / len(counts)
        return cls(
            average=average,
            deviation=math.sqrt(variance),
            maximum=max(counts),
            minimum=min(counts),
            total=total,
        )

    def row(self) -> list[float | int]:
        """[Avg, Dev, Max] — the row layout of paper Table 4."""
        return [round(self.average), round(self.deviation), self.maximum]


def first_failure_years(sim_time: float | None) -> float | None:
    """Convert a simulated first-failure instant to years (Figure 5 y-axis)."""
    if sim_time is None:
        return None
    return sim_time / SECONDS_PER_YEAR


def increased_ratio(value: float, baseline: float) -> float:
    """Percentage of ``value`` relative to ``baseline`` (Figures 6-7 y-axis).

    The paper plots the baseline at 100 %; an SWL run with 2 % extra block
    erases plots at 102 %.
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * value / baseline


def improvement_ratio(value: float, baseline: float) -> float:
    """Relative improvement in percent (the paper's "+51.2%" style numbers)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * (value - baseline) / baseline


def unevenness_of(counts: Sequence[int]) -> float:
    """Max/mean erase-count ratio: a scale-free wear-imbalance indicator."""
    if not counts:
        raise ValueError("no erase counts")
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 0.0
    return max(counts) / mean
