"""Evaluation metrics — the quantities of paper Section 5.

* **Endurance** (Section 5.2): the *first failure time* ("the first time to
  wear out any block") in simulated years, and the distribution of
  per-block erase counts (average, standard deviation, maximum — Table 4).
* **Extra overhead** (Section 5.3): the increased ratios of block erases
  and live-page copyings of an SWL run relative to its baseline
  (Figures 6 and 7, where the baseline sits at 100 %).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

SECONDS_PER_YEAR = 365.0 * 86_400.0


@dataclass(frozen=True)
class EraseDistribution:
    """Summary of per-block erase counts (the columns of paper Table 4).

    ``blocks`` records how many blocks the summary covers; it is what
    makes :meth:`merge` exact (0 on legacy instances built field-by-field).
    """

    average: float
    deviation: float
    maximum: int
    minimum: int
    total: int
    blocks: int = 0

    @classmethod
    def from_counts(cls, counts: Sequence[int]) -> "EraseDistribution":
        if not counts:
            raise ValueError("no erase counts")
        total = sum(counts)
        average = total / len(counts)
        variance = sum((c - average) ** 2 for c in counts) / len(counts)
        return cls(
            average=average,
            deviation=math.sqrt(variance),
            maximum=max(counts),
            minimum=min(counts),
            total=total,
            blocks=len(counts),
        )

    @classmethod
    def merge(cls, parts: Sequence["EraseDistribution"]) -> "EraseDistribution":
        """Combine per-shard distributions into the array-wide one.

        Exact (not an approximation): the pooled variance is recovered
        from each part's deviation, mean, and block count via
        ``E[x^2] = dev^2 + avg^2``, so merging the shards of a device
        array equals computing :meth:`from_counts` over the concatenated
        counts, up to floating-point rounding.
        """
        if not parts:
            raise ValueError("no distributions to merge")
        if any(part.blocks <= 0 for part in parts):
            raise ValueError(
                "merge requires block counts; all parts must come from "
                "from_counts()"
            )
        blocks = sum(part.blocks for part in parts)
        total = sum(part.total for part in parts)
        average = total / blocks
        second_moment = sum(
            part.blocks * (part.deviation ** 2 + part.average ** 2)
            for part in parts
        )
        variance = max(0.0, second_moment / blocks - average ** 2)
        return cls(
            average=average,
            deviation=math.sqrt(variance),
            maximum=max(part.maximum for part in parts),
            minimum=min(part.minimum for part in parts),
            total=total,
            blocks=blocks,
        )

    def row(self) -> list[float | int]:
        """[Avg, Dev, Max] — the row layout of paper Table 4."""
        return [round(self.average), round(self.deviation), self.maximum]


def first_failure_years(sim_time: float | None) -> float | None:
    """Convert a simulated first-failure instant to years (Figure 5 y-axis)."""
    if sim_time is None:
        return None
    return sim_time / SECONDS_PER_YEAR


def increased_ratio(value: float, baseline: float) -> float:
    """Percentage of ``value`` relative to ``baseline`` (Figures 6-7 y-axis).

    The paper plots the baseline at 100 %; an SWL run with 2 % extra block
    erases plots at 102 %.
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * value / baseline


def improvement_ratio(value: float, baseline: float) -> float:
    """Relative improvement in percent (the paper's "+51.2%" style numbers)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * (value - baseline) / baseline


def unevenness_of(counts: Sequence[int]) -> float:
    """Max/mean erase-count ratio: a scale-free wear-imbalance indicator."""
    if not counts:
        raise ValueError("no erase counts")
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 0.0
    return max(counts) / mean


@dataclass(frozen=True)
class FaultRecoverySummary:
    """Cost of fault recovery during one run or campaign.

    Relates what the injector delivered to what the driver spent
    surviving it — the robustness analogue of the Section 5.3 overhead
    ratios.  Built from the ``fault_*`` / recovery counters collected by
    :class:`~repro.sim.engine.SimResult` or a fault campaign.
    """

    faults_injected: int         #: erase + program faults delivered
    erase_retries: int           #: extra erase attempts spent recovering
    recovery_copies: int         #: live pages moved off failing blocks
    recovery_erases: int         #: erases spent draining/condemning blocks
    blocks_retired: int          #: blocks permanently taken out of service
    total_erases: int            #: all block erases in the run

    @property
    def recovery_erase_overhead(self) -> float:
        """Recovery erases as a percentage of all erases (0 when none)."""
        if self.total_erases <= 0:
            return 0.0
        return 100.0 * self.recovery_erases / self.total_erases

    @classmethod
    def from_stats(
        cls,
        injector_stats: dict[str, int],
        recovery_stats: dict[str, int],
        *,
        blocks_retired: int = 0,
        total_erases: int = 0,
    ) -> "FaultRecoverySummary":
        """Assemble from injector/driver stat dicts (campaign layout)."""
        return cls(
            faults_injected=injector_stats.get("erase_faults", 0)
            + injector_stats.get("program_faults", 0),
            erase_retries=recovery_stats.get("erase_retries", 0),
            recovery_copies=recovery_stats.get("recovery_copies", 0),
            recovery_erases=recovery_stats.get("recovery_erases", 0),
            blocks_retired=blocks_retired,
            total_erases=total_erases,
        )
