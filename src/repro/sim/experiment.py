"""Named experiment configurations and runners.

This module turns the evaluation protocol of paper Section 5 into
reusable functions:

* :func:`workload_params_for` sizes the synthetic mobile-PC workload to a
  chip's logical space (the paper uses "accesses within the first
  2,097,152 LBAs" of its 1 GB chip);
* :func:`run_until_first_failure` replays the resampled endless trace
  until the first block wears out (Figure 5);
* :func:`run_fixed_horizon` replays for a fixed amount of simulated time,
  continuing past wear-out exactly like the paper's 10-year Table 4 runs;
* :func:`run_matrix` executes a list of configurations against one shared
  base trace, which is how every figure's k x T sweep is produced;
* :func:`run_service_soak` / :func:`run_service_matrix` drive the
  open-loop service engine (:mod:`repro.service`) instead of the replay
  loop, reporting latency percentiles rather than endurance.

Scaled geometries keep all structural parameters of the paper's setup
(pages/block, GC trigger, greedy policy) — see DESIGN.md, Substitutions.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.config import SWLConfig
from repro.core.policies import LevelerSpec
from repro.flash.geometry import CellType, FlashGeometry
from repro.ftl.base import DEFAULT_OP_RATIO
from repro.ftl.factory import StorageBackend, build_backend
from repro.obs.telemetry import DEFAULT_HEATMAP_BINS
from repro.service.arrival import poisson_arrivals, trace_paced
from repro.service.engine import ServiceEngine
from repro.service.results import ServiceResult
from repro.sim.engine import Simulator, SimResult, StopCondition
from repro.traces.extend import SegmentResampler
from repro.traces.generator import MobilePCWorkload, WorkloadParams
from repro.traces.model import Request
from repro.util.rng import make_rng, spawn_rng

if TYPE_CHECKING:
    from repro.ckpt.supervisor import SupervisorPolicy
    from repro.obs.telemetry import Telemetry

#: Hard request cap for "endless" replays — a defensive bound far above
#: any first-failure point of the shipped geometries.
DEFAULT_REQUEST_CAP = 100_000_000

#: Default endurance scale for scaled chips: the paper's 10,000-cycle
#: MLC×2 endurance becomes 10,000/SCALE cycles.  Thresholds T stay at
#: the paper's values — the benchmark methodology scales endurance only
#: (see DESIGN.md, Substitutions).  The bench suite overrides this with
#: SCALE = 5 (endurance 2,000); this default suits faster exploratory
#: runs.
DEFAULT_ENDURANCE_SCALE = 20


def scaled_mlc2_geometry(
    num_blocks: int = 128,
    *,
    scale: int = DEFAULT_ENDURANCE_SCALE,
) -> FlashGeometry:
    """MLC×2 organization (128 x 2 KB pages/block) at bench scale.

    Block count and endurance shrink; pages per block, page size, the GC
    trigger fraction, and the Cleaner policy stay exactly the paper's.
    """
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    if scale <= 0 or 10_000 % scale:
        raise ValueError(f"scale must divide 10,000, got {scale}")
    return FlashGeometry(
        num_blocks=num_blocks,
        pages_per_block=128,
        page_size=2048,
        endurance=10_000 // scale,
        cell_type=CellType.MLC2,
        name=f"mlc2-scaled-{num_blocks}b-e{10_000 // scale}",
    )


def scaled_threshold(paper_threshold: float, *, scale: int = DEFAULT_ENDURANCE_SCALE) -> float:
    """Map a paper threshold T to a time-compressed equivalent T/scale.

    Provided for exploratory runs that want to compress *both* endurance
    and thresholds.  The shipped benchmarks deliberately do not use it:
    scaling T distorts the race between natural flag setting and forced
    recycles that governs the BET's k > 0 modes (see DESIGN.md).
    """
    scaled = paper_threshold / scale
    if scaled < 1:
        raise ValueError(
            f"T={paper_threshold} at scale {scale} gives T'={scaled} < 1; "
            "use a smaller scale"
        )
    return scaled


@dataclass(frozen=True)
class ExperimentSpec:
    """One storage-backend configuration to evaluate.

    ``seed`` controls the resampling and leveler randomness only; the base
    trace is shared across specs so all systems see identical requests,
    as in the paper's "fair comparisons" setup.

    ``channels=1`` (default) builds the classic single-chip stack —
    bit-identical to the pre-array code path.  ``channels > 1`` builds a
    :class:`~repro.array.DeviceArray` of that many shards, each a full
    copy of ``geometry``, striped per ``striping`` and coordinated per
    ``swl_scope``.
    """

    driver: str
    geometry: FlashGeometry
    #: Wear-leveling mechanism: an :class:`SWLConfig` (the paper's SW
    #: Leveler) or any :class:`~repro.core.policies.LevelerSpec` kind.
    swl: SWLConfig | LevelerSpec | None = None
    op_ratio: float = DEFAULT_OP_RATIO
    alloc_policy: str = "lifo"
    seed: int = 0
    channels: int = 1
    striping: str = "page"
    swl_scope: str = "per-shard"

    def label(self) -> str:
        base = self.driver.upper()
        if self.swl is not None and self.swl.enabled:
            base = f"{base}+{self.swl.label()}"
        if self.channels > 1:
            base = f"{base}x{self.channels}[{self.striping},{self.swl_scope}]"
        return base

    def build(self, *, telemetry: "Telemetry | None" = None) -> StorageBackend:
        """Wire the backend; ``telemetry`` attaches its event bus.

        The bus rides alongside the stack without touching any RNG
        stream, so a telemetry-on build replays bit-identically to a
        telemetry-off one.
        """
        rng = make_rng(self.seed)
        return build_backend(
            self.geometry,
            self.driver,
            self.swl,
            channels=self.channels,
            striping=self.striping,
            swl_scope=self.swl_scope,
            op_ratio=self.op_ratio,
            alloc_policy=self.alloc_policy,
            rng=spawn_rng(rng, "leveler"),
            bus=telemetry.bus if telemetry is not None else None,
        )


def logical_sectors_of(spec: ExperimentSpec) -> int:
    """Sector count of the logical space a spec's backend will export."""
    backend = spec.build()
    return backend.num_logical_pages * backend.sectors_per_page


def workload_params_for(
    spec: ExperimentSpec,
    *,
    duration: float,
    seed: int = 0,
    **overrides: object,
) -> WorkloadParams:
    """Workload parameters sized to a spec's logical space.

    Additional :class:`~repro.traces.generator.WorkloadParams` fields may
    be overridden by keyword (e.g. ``hot_fraction=0.2``).
    """
    base = WorkloadParams(
        total_sectors=logical_sectors_of(spec),
        duration=duration,
        seed=seed,
    )
    return replace(base, **overrides) if overrides else base


def make_workload(params: WorkloadParams) -> MobilePCWorkload:
    """Build the workload generator (exposes the disk image for warmup)."""
    return MobilePCWorkload(params)


def make_base_trace(params: WorkloadParams) -> list[Request]:
    """Materialize the base trace once; share it across a whole sweep."""
    return make_workload(params).requests()


def _start_simulator(
    spec: ExperimentSpec,
    warmup: list[Request] | None,
    skip_reads: bool,
    telemetry: "Telemetry | None" = None,
) -> Simulator:
    """Build the stack and optionally install the disk image.

    The warmup replays the workload's pre-existing data (every written
    extent once) at time zero, so static extents occupy blocks from the
    first simulated second — as on the paper's month-old machine.  The
    handful of erases it causes are counted like any others.

    Wear experiments skip read requests by default: NAND reads neither
    program nor erase, so every Section 5 metric is unchanged, and replay
    runs roughly twice as fast.

    ``telemetry`` attaches its event bus to the backend and carries the
    wear-heatmap preferences into the engine.
    """
    simulator = Simulator(
        spec.build(telemetry=telemetry),
        skip_reads=skip_reads,
        heatmap_interval=(
            telemetry.heatmap_interval if telemetry is not None else None
        ),
        heatmap_bins=(
            telemetry.heatmap_bins if telemetry is not None
            else DEFAULT_HEATMAP_BINS
        ),
    )
    if warmup:
        for request in warmup:
            simulator.apply(request)
    return simulator


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def run_until_first_failure(
    spec: ExperimentSpec,
    base_trace: list[Request],
    *,
    warmup: list[Request] | None = None,
    skip_reads: bool = True,
    request_cap: int = DEFAULT_REQUEST_CAP,
    telemetry: "Telemetry | None" = None,
) -> SimResult:
    """Replay the resampled endless trace until the first block wears out.

    This is the protocol behind Figure 5: "a virtually unlimited
    experiment trace was derived ... by randomly picking up any 10-minute
    trace segment".  The returned result's ``first_failure_years`` is the
    y-axis value.
    """
    simulator = _start_simulator(spec, warmup, skip_reads, telemetry)
    rng = spawn_rng(make_rng(spec.seed), "resampler")
    endless = SegmentResampler(base_trace, rng=rng)
    stop = StopCondition(until_first_failure=True, max_requests=request_cap)
    result = simulator.run(endless.iter_requests(), stop, label=spec.label())
    if telemetry is not None:
        # Drain any batched events so collector/exporter state read
        # directly off the facade is complete the moment the run returns.
        telemetry.flush()
    return result


def run_fixed_horizon(
    spec: ExperimentSpec,
    base_trace: list[Request],
    horizon: float,
    *,
    warmup: list[Request] | None = None,
    skip_reads: bool = True,
    request_cap: int = DEFAULT_REQUEST_CAP,
    telemetry: "Telemetry | None" = None,
) -> SimResult:
    """Replay the resampled trace for ``horizon`` simulated seconds.

    Wear-out does not stop the run (paper Table 4: "trace simulations of
    10 years even though some blocks were worn out").
    """
    simulator = _start_simulator(spec, warmup, skip_reads, telemetry)
    rng = spawn_rng(make_rng(spec.seed), "resampler")
    endless = SegmentResampler(base_trace, rng=rng)
    stop = StopCondition(max_time=horizon, max_requests=request_cap)
    result = simulator.run(endless.iter_requests(), stop, label=spec.label())
    if telemetry is not None:
        telemetry.flush()
    return result


def run_service_soak(
    spec: ExperimentSpec,
    base_trace: list[Request],
    *,
    rate: float | None = None,
    trace_speedup: float | None = None,
    max_requests: int | None = None,
    max_time: float | None = None,
    queue_depth: int = 64,
    warmup: list[Request] | None = None,
    telemetry: "Telemetry | None" = None,
) -> ServiceResult:
    """Serve the resampled endless trace through the open-loop engine.

    Where the replay runners measure *wear*, this one measures *service*:
    requests are re-timed by an arrival model — ``rate`` selects an
    open-loop Poisson process (``rate`` requests per simulated second,
    e.g. :func:`repro.service.arrival.open_loop_rate` for a client
    population), ``trace_speedup`` keeps the trace's own pacing
    compressed by that factor — and flow through bounded per-channel
    FIFO queues, yielding host-visible latency percentiles.  Exactly one
    arrival model must be chosen.

    Arrival randomness draws from a dedicated ``"arrivals"`` stream of
    the spec's seed, so enabling service mode never perturbs the
    resampler or leveler randomness; reads are replayed (never skipped):
    their service time is part of the latency being measured.
    """
    if (rate is None) == (trace_speedup is None):
        raise ValueError(
            "choose exactly one arrival model: "
            "rate (Poisson) or trace_speedup (trace-paced)"
        )
    engine = ServiceEngine(
        spec.build(telemetry=telemetry),
        queue_depth=queue_depth,
        telemetry=telemetry,
        heatmap_interval=(
            telemetry.heatmap_interval if telemetry is not None else None
        ),
        heatmap_bins=(
            telemetry.heatmap_bins if telemetry is not None
            else DEFAULT_HEATMAP_BINS
        ),
    )
    if warmup:
        for request in warmup:
            engine.apply(request)
    rng = make_rng(spec.seed)
    endless = SegmentResampler(
        base_trace, rng=spawn_rng(rng, "resampler")
    ).iter_requests()
    if rate is not None:
        arrivals = poisson_arrivals(endless, rate, spawn_rng(rng, "arrivals"))
    else:
        assert trace_speedup is not None
        arrivals = trace_paced(endless, speedup=trace_speedup)
    return engine.serve(
        arrivals,
        max_requests=max_requests,
        max_time=max_time,
        label=spec.label(),
    )


def run_service_matrix(
    specs: list[ExperimentSpec],
    base_trace: list[Request],
    *,
    rate: float | None = None,
    trace_speedup: float | None = None,
    max_requests: int | None = None,
    max_time: float | None = None,
    queue_depth: int = 64,
    warmup: list[Request] | None = None,
) -> list[ServiceResult]:
    """Soak each spec against one shared trace and arrival model.

    The standard comparison is SWL-off vs SWL-on at the paper's T
    thresholds: identical requests, identical arrivals, so any latency
    difference is cleaning/leveling interference.  Runs serially — each
    cell is deterministic from its spec alone, and service runs are
    usually few (one per T) rather than a full k x T sweep.
    """
    return [
        run_service_soak(
            spec,
            base_trace,
            rate=rate,
            trace_speedup=trace_speedup,
            max_requests=max_requests,
            max_time=max_time,
            queue_depth=queue_depth,
            warmup=warmup,
        )
        for spec in specs
    ]


#: Per-worker matrix context installed by :func:`_matrix_worker_init`.
#: The base trace is by far the largest object in a sweep; shipping it
#: once per worker via the pool initializer (instead of once per task,
#: as the old per-cell payloads did) is what makes the fan-out win.
_MATRIX_CTX: tuple[
    list[Request], float | None, list[Request] | None, int
] | None = None


def _matrix_worker_init(
    base_trace: list[Request],
    horizon: float | None,
    warmup: list[Request] | None,
    request_cap: int,
) -> None:
    """Install the shared sweep context in a pool worker process."""
    global _MATRIX_CTX
    _MATRIX_CTX = (base_trace, horizon, warmup, request_cap)


def _run_matrix_spec(spec: ExperimentSpec) -> SimResult:
    """One matrix cell against the worker's installed context."""
    assert _MATRIX_CTX is not None, "worker context not installed"
    base_trace, horizon, warmup, request_cap = _MATRIX_CTX
    if horizon is None:
        return run_until_first_failure(
            spec, base_trace, warmup=warmup, request_cap=request_cap
        )
    return run_fixed_horizon(
        spec, base_trace, horizon, warmup=warmup, request_cap=request_cap
    )


def _run_matrix_chunk(specs: list[ExperimentSpec]) -> list[SimResult]:
    """One worker's whole share of the matrix, submitted as one task."""
    return [_run_matrix_spec(spec) for spec in specs]


def run_matrix(
    specs: list[ExperimentSpec],
    base_trace: list[Request],
    *,
    horizon: float | None = None,
    warmup: list[Request] | None = None,
    request_cap: int = DEFAULT_REQUEST_CAP,
    workers: int | None = None,
    policy: "SupervisorPolicy | None" = None,
) -> list[SimResult]:
    """Run many specs over one shared base trace.

    ``horizon=None`` selects first-failure mode; otherwise fixed-horizon.

    ``workers`` fans the matrix out over that many worker processes (one
    config per task).  Each cell is already fully deterministic — every
    stochastic stream is derived from the spec's own seed, never from
    shared state — so parallel results are identical to serial ones, in
    the same order; only the wall-clock changes.  ``None`` or ``1`` runs
    serially in-process.

    ``policy`` routes the matrix through the fault-tolerant campaign
    supervisor (:func:`repro.ckpt.supervisor.run_supervised_matrix`): each
    cell checkpoints as it runs, a crashed or killed worker is retried by
    resuming its last image (bit-identical to an undisturbed run), a hung
    worker is retried with a fresh deterministic retry seed, and a cell
    that exhausts its attempts is **quarantined** — its slot in the
    returned list is ``None`` — instead of the whole sweep raising.
    """
    if policy is not None:
        from repro.ckpt.supervisor import run_supervised_matrix

        report = run_supervised_matrix(
            specs,
            base_trace,
            horizon=horizon,
            warmup=warmup,
            request_cap=request_cap,
            workers=workers or 1,
            policy=policy,
        )
        return report.results()  # type: ignore[return-value]
    if workers is None or workers <= 1 or len(specs) <= 1:
        if horizon is None:
            return [
                run_until_first_failure(
                    spec, base_trace, warmup=warmup, request_cap=request_cap
                )
                for spec in specs
            ]
        return [
            run_fixed_horizon(
                spec, base_trace, horizon, warmup=warmup,
                request_cap=request_cap
            )
            for spec in specs
        ]
    # One round-robin chunk per worker: each worker receives exactly one
    # task holding its whole share of the cells, so the base trace is
    # serialized once per worker (by the initializer) instead of once per
    # cell, and process spawn cost amortizes across the chunk.  The
    # stride layout interleaves early (typically heavier, lower-k) and
    # late cells across workers for balance; results are re-strided back
    # into spec order.
    effective = min(workers, len(specs))
    chunks = [specs[index::effective] for index in range(effective)]
    with ProcessPoolExecutor(
        max_workers=effective,
        initializer=_matrix_worker_init,
        initargs=(base_trace, horizon, warmup, request_cap),
    ) as pool:
        chunk_results = list(pool.map(_run_matrix_chunk, chunks))
    results: list[SimResult | None] = [None] * len(specs)
    for index, chunk in enumerate(chunk_results):
        results[index::effective] = chunk
    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]
