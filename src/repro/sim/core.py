"""Request-application core shared by every simulation driver.

The closed-loop replay engine (:class:`~repro.sim.engine.Simulator`) and
the open-loop service engine (:class:`~repro.service.engine.ServiceEngine`)
apply requests to a storage backend in exactly the same way: advance the
simulated clock, translate the sector span to logical pages, hand the
batch to the backend, account pages and failures, and sample wear.  That
shared mechanism lives here as :class:`RequestCore`; the drivers differ
only in *when* requests arrive (trace timestamps vs an arrival process)
and in what they layer on top (stop conditions and checkpointing vs
per-channel queues and latency accounting).

The core drives the :class:`~repro.ftl.factory.StorageBackend` protocol
only — it never touches a chip, driver, or leveler directly — so the same
request loop serves a single :class:`~repro.ftl.factory.StorageStack` and
a multi-channel :class:`~repro.array.DeviceArray` alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.flash.errors import PowerLossError, TranslationError
from repro.ftl.factory import StorageBackend
from repro.obs.heatmap import WearHeatmap
from repro.sim.metrics import EraseDistribution, first_failure_years
from repro.traces.model import Request


@dataclass(frozen=True)
class StopCondition:
    """When to end a replay.  The first satisfied criterion wins.

    ``until_first_failure`` ends the run the moment any block exceeds its
    endurance; ``max_time`` is a simulated-seconds horizon; ``max_requests``
    is a hard budget (also the safety net for endless traces).
    """

    until_first_failure: bool = False
    max_time: float | None = None
    max_requests: int | None = None

    def __post_init__(self) -> None:
        if (
            not self.until_first_failure
            and self.max_time is None
            and self.max_requests is None
        ):
            raise ValueError("an unbounded replay needs at least one stop criterion")
        if self.max_time is not None and self.max_time <= 0:
            raise ValueError(f"max_time must be positive, got {self.max_time}")
        if self.max_requests is not None and self.max_requests <= 0:
            raise ValueError(f"max_requests must be positive, got {self.max_requests}")


@dataclass(frozen=True)
class WearSample:
    """One point of the wear-evolution time series."""

    time: float            #: simulated seconds
    average: float
    deviation: float
    maximum: int
    total_erases: int


@dataclass
class SimResult:
    """Outcome of one replay."""

    label: str
    requests: int
    pages_written: int
    pages_read: int
    sim_time: float                      #: simulated seconds covered
    first_failure_time: float | None    #: simulated seconds, None = no failure
    erase_distribution: EraseDistribution
    total_erases: int
    live_page_copies: int
    gc_runs: int
    layer_stats: dict[str, int]
    swl_stats: dict[str, int] = field(default_factory=dict)
    device_busy_time: float = 0.0
    timeline: list[WearSample] = field(default_factory=list)
    #: Injector counters when a fault campaign was attached (else empty).
    fault_stats: dict[str, int] = field(default_factory=dict)
    #: ``True`` when a scheduled power loss ended the replay early.
    power_lost: bool = False
    #: Per-shard erase distributions of a multi-channel backend; empty for
    #: a single stack (the aggregate is then ``erase_distribution``).
    shard_erase_distributions: list[EraseDistribution] = field(
        default_factory=list
    )
    #: Periodic wear heatmaps (telemetry runs only; see ``repro.obs``).
    heatmaps: list[WearHeatmap] = field(default_factory=list)

    @property
    def first_failure_years(self) -> float | None:
        return first_failure_years(self.first_failure_time)

    @property
    def channels(self) -> int:
        """Channel count of the backend that produced this result."""
        return max(1, len(self.shard_erase_distributions))

    def as_dict(self) -> dict[str, object]:
        return {
            "label": self.label,
            "requests": self.requests,
            "pages_written": self.pages_written,
            "pages_read": self.pages_read,
            "sim_time_s": self.sim_time,
            "device_busy_time": self.device_busy_time,
            "first_failure_s": self.first_failure_time,
            "first_failure_years": self.first_failure_years,
            "erase_avg": self.erase_distribution.average,
            "erase_dev": self.erase_distribution.deviation,
            "erase_max": self.erase_distribution.maximum,
            "total_erases": self.total_erases,
            "live_page_copies": self.live_page_copies,
            "gc_runs": self.gc_runs,
            "channels": self.channels,
            **{f"layer_{k}": v for k, v in self.layer_stats.items()},
            **{f"swl_{k}": v for k, v in self.swl_stats.items()},
            **({"power_lost": self.power_lost} if self.power_lost else {}),
            **{f"fault_{k}": v for k, v in self.fault_stats.items()},
            # Only present on telemetry runs, so a telemetry-off dict is
            # a strict subset of a telemetry-on one (minus this key).
            **(
                {"heatmap_snapshots": [h.as_dict() for h in self.heatmaps]}
                if self.heatmaps
                else {}
            ),
        }


#: Timeline length at which sampling decimates (see ``max_samples``).
DEFAULT_MAX_SAMPLES = 4096

#: Heatmap count at which sampling decimates (see ``max_heatmaps``).
DEFAULT_MAX_HEATMAPS = 64


class RequestCore:
    """Applies requests to one storage backend; the shared driver core.

    Parameters
    ----------
    stack:
        A wired :class:`~repro.ftl.factory.StorageBackend` — a single
        :class:`~repro.ftl.factory.StorageStack` or a multi-channel
        :class:`~repro.array.DeviceArray`.
    lba_modulo:
        When ``True`` (default), sector addresses beyond the logical space
        wrap around instead of raising — the paper keeps "accesses within
        the first 2,097,152 LBAs", and wrapping lets any trace drive any
        chip size.
    skip_reads:
        When ``True``, read requests advance the clock and counters but do
        not touch the stack.  Reads cannot change wear (NAND reads neither
        program nor erase), so the paper's endurance and overhead metrics
        are identical either way; skipping roughly halves replay time.
    sample_interval:
        When set (simulated seconds), the core records a
        :class:`WearSample` of the erase-count distribution every interval
        — the time series behind "the distribution of erase counts over
        blocks was much improved".  ``None`` (default) disables sampling.
    max_samples:
        Timeline length bound.  When an append would grow past it, the
        timeline is decimated — every other sample dropped, the sampling
        interval doubled — so a 10-year horizon holds the resolution it
        can afford instead of growing without bound.  ``None`` disables
        the cap.
    heatmap_interval:
        When set (simulated seconds), the core snapshots a
        :class:`~repro.obs.heatmap.WearHeatmap` of per-block erase counts
        every interval — the spatial companion of the ``WearSample``
        timeline.  A final snapshot is always taken at the end of the
        run, so any enabled replay that advances the clock yields at
        least two heatmaps.  ``None`` (default) disables them.
    heatmap_bins:
        Grid width of each heatmap (blocks are binned into this many
        fixed-width cells).
    max_heatmaps:
        Heatmap count bound, decimated like ``max_samples``.
    """

    def __init__(
        self,
        stack: StorageBackend,
        *,
        lba_modulo: bool = True,
        skip_reads: bool = False,
        sample_interval: float | None = None,
        max_samples: int | None = DEFAULT_MAX_SAMPLES,
        heatmap_interval: float | None = None,
        heatmap_bins: int = 64,
        max_heatmaps: int | None = DEFAULT_MAX_HEATMAPS,
    ) -> None:
        if sample_interval is not None and sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {sample_interval}"
            )
        if max_samples is not None and max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        if heatmap_interval is not None and heatmap_interval <= 0:
            raise ValueError(
                f"heatmap_interval must be positive, got {heatmap_interval}"
            )
        if heatmap_bins <= 0:
            raise ValueError(f"heatmap_bins must be positive, got {heatmap_bins}")
        if max_heatmaps is not None and max_heatmaps < 2:
            raise ValueError(f"max_heatmaps must be >= 2, got {max_heatmaps}")
        self.stack = stack
        self.lba_modulo = lba_modulo
        self.skip_reads = skip_reads
        self.sample_interval = sample_interval
        self.max_samples = max_samples
        self.heatmap_interval = heatmap_interval
        self.heatmap_bins = heatmap_bins
        self.max_heatmaps = max_heatmaps
        self.timeline: list[WearSample] = []
        self.heatmaps: list[WearHeatmap] = []
        self._next_sample = 0.0 if sample_interval else float("inf")
        self._next_heatmap = 0.0 if heatmap_interval else float("inf")
        self.clock = 0.0
        self.requests_done = 0
        self.pages_written = 0
        self.pages_read = 0
        self.power_lost = False
        self.first_failure_clock: float | None = None
        self._spp = stack.sectors_per_page
        self._logical_pages = stack.num_logical_pages
        # Reusable page-span buffers: the replay loop would otherwise
        # materialize a fresh list per request (millions over a 10-year
        # horizon).  Safe because backends consume the batch within the
        # call and never keep a reference.
        self._single_page = [0]
        self._span_buffer: list[int] = []

    # ------------------------------------------------------------------
    def _page_span(self, request: Request) -> range:
        """Logical pages touched by a sector request."""
        first = request.lba // self._spp
        last = (request.end_lba - 1) // self._spp
        if self.lba_modulo:
            return range(first, last + 1)  # wrapped per-page below
        if last >= self._logical_pages:
            raise TranslationError(
                f"request [{request.lba}, {request.end_lba}) exceeds the "
                f"logical space of {self._logical_pages} pages"
            )
        return range(first, last + 1)

    def apply(self, request: Request) -> None:
        """Apply one request to the backend and advance the clock.

        The page span is materialized once and handed to the backend as a
        batch; a device array groups it per shard (the batched dispatcher)
        while a single stack applies it page by page in order, making the
        two bit-identical at one channel.
        """
        backend = self.stack
        self.clock = max(self.clock, request.time)
        is_write = request.is_write()
        first = request.lba // self._spp
        last = (request.end_lba - 1) // self._spp
        if not self.lba_modulo and last >= self._logical_pages:
            raise TranslationError(
                f"request [{request.lba}, {request.end_lba}) exceeds the "
                f"logical space of {self._logical_pages} pages"
            )
        if not is_write and self.skip_reads:
            self.pages_read += last - first + 1
        else:
            lpns: Sequence[int]
            if first == last:
                # Single-page fast path — the dominant request shape in
                # the paper's traces.
                buffer = self._single_page
                buffer[0] = (
                    first % self._logical_pages if self.lba_modulo else first
                )
                lpns = buffer
            elif not self.lba_modulo or last < self._logical_pages:
                # In-range span: the modulo is the identity, so a lazy
                # range replaces the per-page list materialization.
                lpns = range(first, last + 1)
            else:
                buffer = self._span_buffer
                buffer.clear()
                pages = self._logical_pages
                buffer.extend(lpn % pages for lpn in range(first, last + 1))
                lpns = buffer
            try:
                if is_write:
                    self.pages_written += backend.write_pages(lpns)
                else:
                    self.pages_read += backend.read_pages(lpns)
            except PowerLossError as exc:
                # Recover the partially applied page count the batch was
                # carrying when the lights went out (see factory).
                done = getattr(exc, "pages_done", 0)
                if is_write:
                    self.pages_written += done
                else:
                    self.pages_read += done
                raise
        self.requests_done += 1
        if self.clock >= self._next_sample:
            self._take_sample()
        if self.clock >= self._next_heatmap:
            self._take_heatmap()
        if (
            self.first_failure_clock is None
            and backend.first_failure is not None
        ):
            # Runs past the horizon keep simulating (the paper's Table 4
            # does), but the failure instant is pinned here.
            self.first_failure_clock = self.clock
        backend.on_request(self.clock)

    def _take_sample(self) -> None:
        # O(1): reads the backend's incremental wear accumulator instead
        # of rescanning every block's erase count (bit-identical values;
        # see repro.sim.metrics).
        distribution = self.stack.erase_distribution()
        self.timeline.append(
            WearSample(
                time=self.clock,
                average=distribution.average,
                deviation=distribution.deviation,
                maximum=distribution.maximum,
                total_erases=distribution.total,
            )
        )
        assert self.sample_interval is not None
        if self.max_samples is not None and len(self.timeline) >= self.max_samples:
            # Decimate: keep every other sample and sample half as often,
            # holding memory flat over arbitrarily long horizons while
            # degrading resolution gracefully (oldest data thins first).
            del self.timeline[1::2]
            self.sample_interval *= 2
        self._next_sample = self.clock + self.sample_interval

    def _take_heatmap(self) -> None:
        # O(bins) after the backend's first snapshot seeds its bin sums.
        self.heatmaps.append(
            self.stack.wear_heatmap(self.clock, bins=self.heatmap_bins)
        )
        assert self.heatmap_interval is not None
        if self.max_heatmaps is not None and len(self.heatmaps) >= self.max_heatmaps:
            # Same decimation scheme as the WearSample timeline.
            del self.heatmaps[1::2]
            self.heatmap_interval *= 2
        self._next_heatmap = self.clock + self.heatmap_interval

    def result(self, *, label: str | None = None) -> SimResult:
        """Snapshot the current state as a :class:`SimResult`.

        Multi-shard backends additionally report one erase distribution
        per shard; the aggregate ``erase_distribution`` is their
        :meth:`~repro.sim.metrics.EraseDistribution.merge`.
        """
        backend = self.stack
        if self.sample_interval is not None and (
            not self.timeline or self.timeline[-1].time < self.clock
        ):
            # Close the timeline with the end-of-run wear state, exactly
            # as the heatmap series below: the timeline used to end one
            # interval short of sim_time, hiding the final wear picture
            # from consumers.
            self._take_sample()
        if self.heatmap_interval is not None and (
            not self.heatmaps or self.heatmaps[-1].ts < self.clock
        ):
            # Close the series with the end-of-run wear picture.
            self._take_heatmap()
        layer_stats = backend.layer_stats()
        shard_distributions = backend.shard_erase_distributions()
        if len(shard_distributions) > 1:
            erase_distribution = EraseDistribution.merge(shard_distributions)
        else:
            erase_distribution = shard_distributions[0]
        return SimResult(
            label=label or backend.name,
            requests=self.requests_done,
            pages_written=self.pages_written,
            pages_read=self.pages_read,
            sim_time=self.clock,
            first_failure_time=self.first_failure_clock,
            erase_distribution=erase_distribution,
            total_erases=backend.total_erases(),
            live_page_copies=layer_stats.get("live_page_copies", 0),
            gc_runs=layer_stats.get("gc_runs", 0),
            layer_stats=layer_stats,
            swl_stats=backend.swl_stats(),
            device_busy_time=backend.busy_time,
            timeline=list(self.timeline),
            fault_stats=backend.fault_stats(),
            power_lost=self.power_lost,
            shard_erase_distributions=(
                shard_distributions if len(shard_distributions) > 1 else []
            ),
            heatmaps=list(self.heatmaps),
        )
