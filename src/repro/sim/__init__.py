"""Simulation engine, metrics, and the paper's experiment protocols.

:mod:`repro.sim.engine` replays traces against a storage stack;
:mod:`repro.sim.metrics` computes the endurance and overhead metrics of
Section 5; :mod:`repro.sim.experiment` packages the first-failure and
fixed-horizon protocols; :mod:`repro.sim.results` renders results in the
paper's table/figure layouts.
"""

from repro.sim.engine import Simulator, SimResult, StopCondition, WearSample
from repro.sim.experiment import (
    DEFAULT_REQUEST_CAP,
    ExperimentSpec,
    logical_sectors_of,
    make_base_trace,
    make_workload,
    run_fixed_horizon,
    run_matrix,
    run_until_first_failure,
    workload_params_for,
)
from repro.sim.metrics import (
    SECONDS_PER_YEAR,
    EraseDistribution,
    TenantUsage,
    first_failure_years,
    improvement_ratio,
    increased_ratio,
    unevenness_of,
)
from repro.sim.reporting import (
    endurance_markdown_report,
    markdown_report,
    save_endurance_report,
    save_report,
    tenant_attribution_table,
)
from repro.sim.results import (
    fig5_rows,
    format_fig5,
    format_overheads,
    format_table4,
    overhead_rows,
    table4_rows,
)

__all__ = [
    "DEFAULT_REQUEST_CAP",
    "EraseDistribution",
    "ExperimentSpec",
    "SECONDS_PER_YEAR",
    "SimResult",
    "Simulator",
    "StopCondition",
    "TenantUsage",
    "WearSample",
    "endurance_markdown_report",
    "fig5_rows",
    "first_failure_years",
    "format_fig5",
    "format_overheads",
    "format_table4",
    "improvement_ratio",
    "increased_ratio",
    "logical_sectors_of",
    "make_base_trace",
    "markdown_report",
    "make_workload",
    "overhead_rows",
    "run_fixed_horizon",
    "run_matrix",
    "run_until_first_failure",
    "save_endurance_report",
    "save_report",
    "table4_rows",
    "tenant_attribution_table",
    "unevenness_of",
    "workload_params_for",
]
