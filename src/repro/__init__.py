"""repro — static wear leveling for flash-memory storage systems.

A complete, executable reproduction of

    Yuan-Hao Chang, Jen-Wei Hsieh, Tei-Wei Kuo.
    "Endurance Enhancement of Flash-Memory Storage Systems:
     An Efficient Static Wear Leveling Design."  DAC 2007.

The package layers exactly like the paper's Figure 1:

* :mod:`repro.flash` — the NAND chip simulator and MTD layer;
* :mod:`repro.ftl` — the FTL (page-level) and NFTL (block-level)
  translation drivers with the greedy Cleaner and dynamic wear leveling;
* :mod:`repro.core` — the SW Leveler: Block Erasing Table, SWL-Procedure,
  SWL-BETUpdate (the paper's contribution);
* :mod:`repro.traces` — the synthetic mobile-PC workload and the
  10-minute segment resampler of Section 5.1;
* :mod:`repro.sim` — the trace-replay engine and experiment protocols;
* :mod:`repro.analysis` — the analytic models of Section 4;
* :mod:`repro.obs` — the telemetry subsystem: typed event tracing,
  metrics, wear heatmaps, and exporters (off by default, zero-cost);
* :mod:`repro.workloads` — composable workload shapes (hotspot,
  sequential, uniform, mixed, phase-shifting) and the multi-tenant
  multiplexer with per-tenant wear attribution;
* :mod:`repro.endurance` — lifetime projection: WAF, TBW, DWPD, and
  first-failure horizons via the ``repro endure`` CLI.

Quickstart
----------
>>> from repro import build_stack, SWLConfig, MLC2_TINY
>>> stack = build_stack(MLC2_TINY, "nftl", SWLConfig(threshold=50, k=0))
>>> stack.layer.write(0)
>>> stack.layer.read(0) is None  # payload storage is off by default
True
"""

from repro.array import (
    DeviceArray,
    StripingPolicy,
    WearCoordinator,
    build_array,
    make_striping,
)
from repro.core import (
    BetStore,
    BlockErasingTable,
    CacheAvoidLeveler,
    DualPoolLeveler,
    LevelerSpec,
    SWLConfig,
    SWLeveler,
    SoftWearLeveler,
    leveler_kinds,
    paper_sweep,
)
from repro.endurance import (
    EnduranceProjection,
    endurance_cells,
    project_endurance,
    run_endurance_matrix,
)
from repro.fault import (
    CrashConsistencyHarness,
    FaultCampaignResult,
    FaultInjector,
    FaultPlan,
    run_fault_campaign,
)
from repro.flash import (
    MLC2_1GB,
    MLC2_BENCH,
    MLC2_TINY,
    FlashGeometry,
    MtdDevice,
    NandFlash,
    mlc2,
    slc_large_block,
    slc_small_block,
)
from repro.fs import FatFileSystem
from repro.obs import (
    EventBus,
    MetricsCollector,
    MetricsRegistry,
    MetricsSnapshot,
    Telemetry,
    WearHeatmap,
    render_prometheus,
)
from repro.ftl import (
    NFTL,
    BlockDevice,
    PageMappingFTL,
    StorageBackend,
    StorageStack,
    TranslationLayer,
    build_backend,
    build_stack,
)
from repro.sim import (
    ExperimentSpec,
    SimResult,
    Simulator,
    StopCondition,
    WearSample,
    make_base_trace,
    markdown_report,
    run_fixed_horizon,
    run_matrix,
    run_until_first_failure,
    workload_params_for,
)
from repro.traces import MobilePCWorkload, Op, Request, SegmentResampler, WorkloadParams
from repro.workloads import (
    MultiTenantWorkload,
    ShapeParams,
    TenantSpec,
    make_shape,
    run_multi_tenant_replay,
    run_multi_tenant_service,
)

__version__ = "1.0.0"

__all__ = [
    "BetStore",
    "BlockDevice",
    "BlockErasingTable",
    "CacheAvoidLeveler",
    "CrashConsistencyHarness",
    "DeviceArray",
    "DualPoolLeveler",
    "EnduranceProjection",
    "EventBus",
    "ExperimentSpec",
    "FatFileSystem",
    "FaultCampaignResult",
    "FaultInjector",
    "FaultPlan",
    "FlashGeometry",
    "LevelerSpec",
    "MLC2_1GB",
    "MLC2_BENCH",
    "MLC2_TINY",
    "MetricsCollector",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MobilePCWorkload",
    "MtdDevice",
    "MultiTenantWorkload",
    "NFTL",
    "NandFlash",
    "Op",
    "PageMappingFTL",
    "Request",
    "SWLConfig",
    "SWLeveler",
    "SegmentResampler",
    "ShapeParams",
    "SimResult",
    "SoftWearLeveler",
    "Simulator",
    "StopCondition",
    "StorageBackend",
    "StorageStack",
    "StripingPolicy",
    "Telemetry",
    "TenantSpec",
    "TranslationLayer",
    "WearCoordinator",
    "WearHeatmap",
    "WearSample",
    "WorkloadParams",
    "build_array",
    "build_backend",
    "build_stack",
    "endurance_cells",
    "leveler_kinds",
    "make_base_trace",
    "make_shape",
    "make_striping",
    "markdown_report",
    "mlc2",
    "paper_sweep",
    "project_endurance",
    "render_prometheus",
    "run_endurance_matrix",
    "run_fault_campaign",
    "run_fixed_horizon",
    "run_matrix",
    "run_multi_tenant_replay",
    "run_multi_tenant_service",
    "run_until_first_failure",
    "slc_large_block",
    "slc_small_block",
    "workload_params_for",
]
