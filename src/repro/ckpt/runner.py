"""Resumable replay: periodic checkpoints of the full simulator stack.

:func:`run_resumable` is :func:`~repro.sim.experiment.run_until_first_failure`
/ :func:`~repro.sim.experiment.run_fixed_horizon` with durability: it
drives the same resampled-segment replay loop the plain runners use, but
at segment boundaries it can freeze the whole stack — chip wear state,
FTL/NFTL tables, SW Leveler + BET, every RNG stream, fault-plan cursors,
the engine's bookkeeping, and the resampler's position — into one
CRC-guarded image (:mod:`repro.ckpt.image`).

The resume contract is exact: a replay interrupted at any checkpoint and
resumed from it produces a :meth:`~repro.sim.engine.SimResult.as_dict`
byte-identical to the uninterrupted run.  Two design choices make that
cheap to guarantee:

* checkpoints are only taken at *segment boundaries*, where no request,
  procedure, or suspension is in flight — ``segments_emitted`` plus the
  resampler RNG state then fully determine every future request;
* a restore target is a freshly *built* stack (same spec, same wiring)
  whose state is overwritten in place, so object graphs never need to be
  pickled — every component contributes a JSON-friendly
  ``snapshot_state()`` and a validating ``restore_state()``.

A checkpoint also pins the configuration that produced it (spec, replay
mode, base-trace digest); :func:`run_resumable` refuses to resume into a
different one with :class:`~repro.ckpt.image.CheckpointMismatchError`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Sequence

from repro.ckpt.image import (
    CheckpointMismatchError,
    read_image,
    write_image,
)
from repro.flash.errors import PowerLossError
from repro.ftl.factory import StorageBackend, build_backend
from repro.sim.engine import SimResult, Simulator, StopCondition
from repro.sim.experiment import DEFAULT_REQUEST_CAP, ExperimentSpec
from repro.traces.extend import SegmentResampler
from repro.fault.plan import FaultPlan
from repro.traces.model import Request
from repro.util.diagnostics import get_logger
from repro.util.rng import make_rng, spawn_rng

ckpt_log = get_logger("ckpt")


class ReplayInterrupted(RuntimeError):
    """Raised by the ``crash_after`` test hook right after a checkpoint.

    The image on disk is then exactly the state the exception interrupted,
    which is what crash/resume tests and the CI kill-and-resume smoke use
    to simulate dying mid-run at a known-durable instant.
    """


@dataclass(frozen=True)
class CheckpointPolicy:
    """Where and how often :func:`run_resumable` checkpoints.

    Parameters
    ----------
    path:
        Image destination (atomically replaced on every checkpoint).
    every_requests:
        Request-count cadence, enforced at segment boundaries: a new
        image is written at the first boundary where at least this many
        requests completed since the previous one.
    initial:
        Also checkpoint at the very first boundary (before any segment),
        so even a run killed in its first segment can resume with its
        original seed instead of rerunning from scratch.
    crash_after:
        Testing hook: raise :class:`ReplayInterrupted` immediately after
        writing this many checkpoints.  ``None`` (default) never raises.
    on_checkpoint:
        Observer called with the running checkpoint count right after
        each image lands on disk.  The campaign supervisor's tests and
        the CI kill-and-resume smoke hang or SIGKILL workers from here —
        at an instant where a durable image is guaranteed to exist.
    """

    path: str | Path
    every_requests: int = 100_000
    initial: bool = True
    crash_after: int | None = None
    on_checkpoint: "Callable[[int], None] | None" = None

    def __post_init__(self) -> None:
        if self.every_requests <= 0:
            raise ValueError(
                f"every_requests must be positive, got {self.every_requests}"
            )
        if self.crash_after is not None and self.crash_after <= 0:
            raise ValueError(
                f"crash_after must be positive, got {self.crash_after}"
            )


# ----------------------------------------------------------------------
# Configuration fingerprints
# ----------------------------------------------------------------------
def _swl_state(swl: object) -> dict[str, object]:
    """JSON-friendly identity of a wear-leveling config.

    The :class:`~repro.core.config.SWLConfig` form is frozen exactly as
    historical checkpoints wrote it, so pre-arena images keep matching;
    a :class:`~repro.core.policies.LevelerSpec` adds a ``kind`` tag plus
    its per-kind knobs — a different shape, so a checkpoint taken under
    one config class can never silently resume under the other.
    """
    from repro.core.policies import LevelerSpec

    if isinstance(swl, LevelerSpec):
        return {
            "kind": swl.kind,
            "enabled": swl.enabled,
            "threshold": swl.threshold,
            "k": swl.k,
            "selection": swl.selection,
            "trigger": swl.trigger,
            "trigger_param": swl.trigger_param,
            "delta": swl.delta,
            "check_period": swl.check_period,
            "batch": swl.batch,
            "cache_pages": swl.cache_pages,
            "period_requests": swl.period_requests,
            "span_blocks": swl.span_blocks,
        }
    return {
        "enabled": swl.enabled,  # type: ignore[attr-defined]
        "threshold": swl.threshold,  # type: ignore[attr-defined]
        "k": swl.k,  # type: ignore[attr-defined]
        "selection": swl.selection,  # type: ignore[attr-defined]
        "trigger": swl.trigger,  # type: ignore[attr-defined]
        "trigger_param": swl.trigger_param,  # type: ignore[attr-defined]
    }


def spec_state(spec: ExperimentSpec) -> dict[str, object]:
    """JSON-friendly identity of a spec; pins a checkpoint to its config."""
    geometry = spec.geometry
    return {
        "driver": spec.driver,
        "geometry": {
            "name": geometry.name,
            "num_blocks": geometry.num_blocks,
            "pages_per_block": geometry.pages_per_block,
            "page_size": geometry.page_size,
            "endurance": geometry.endurance,
            "cell_type": geometry.cell_type.name,
        },
        "swl": None if spec.swl is None else _swl_state(spec.swl),
        "op_ratio": spec.op_ratio,
        "alloc_policy": spec.alloc_policy,
        "seed": spec.seed,
        "channels": spec.channels,
        "striping": spec.striping,
        "swl_scope": spec.swl_scope,
    }


def fault_plan_state(plan: FaultPlan | None) -> dict[str, object] | None:
    """JSON-friendly identity of a fault plan (``None`` for no faults)."""
    if plan is None:
        return None
    return {
        "seed": plan.seed,
        "erase_fail_prob": plan.erase_fail_prob,
        "erase_weibull_shape": plan.erase_weibull_shape,
        "program_fail_prob": plan.program_fail_prob,
        "read_ber": plan.read_ber,
        "ecc_correctable_bits": plan.ecc_correctable_bits,
        "read_retry_limit": plan.read_retry_limit,
        "power_loss_at": list(plan.power_loss_at),
        "torn_writes": plan.torn_writes,
    }


def trace_digest(trace: Sequence[Request] | None) -> str | None:
    """Content digest of a trace; rejects resuming onto different requests."""
    if trace is None:
        return None
    digest = hashlib.sha256()
    for request in trace:
        digest.update(
            f"{request.time!r}|{request.op.value}|{request.lba}|"
            f"{request.sectors}\n".encode()
        )
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Stack construction (mirrors ExperimentSpec.build + optional faults)
# ----------------------------------------------------------------------
def build_spec_backend(
    spec: ExperimentSpec, *, fault_plan: FaultPlan | None = None
) -> StorageBackend:
    """Build a spec's backend, optionally with per-shard fault injectors.

    With ``fault_plan=None`` this is exactly
    :meth:`~repro.sim.experiment.ExperimentSpec.build` — same construction
    order, same RNG streams — so checkpoint runs stay bit-identical to
    the plain runners.
    """
    rng = make_rng(spec.seed)
    return build_backend(
        spec.geometry,
        spec.driver,
        spec.swl,
        channels=spec.channels,
        striping=spec.striping,
        swl_scope=spec.swl_scope,
        op_ratio=spec.op_ratio,
        alloc_policy=spec.alloc_policy,
        rng=spawn_rng(rng, "leveler"),
        fault_plan=fault_plan,
    )


def _replay_payload(
    simulator: Simulator,
    resampler: SegmentResampler,
    spec: ExperimentSpec,
    mode: dict[str, object],
    trace_id: str | None,
) -> dict[str, object]:
    return {
        "kind": "replay",
        "spec": spec_state(spec),
        "mode": mode,
        "trace_sha256": trace_id,
        "simulator": simulator.snapshot_state(),
        "backend": simulator.stack.snapshot_state(),  # type: ignore[attr-defined]
        "resampler": resampler.snapshot_state(),
    }


def _check_resume_identity(
    payload: dict[str, object],
    spec: ExperimentSpec,
    mode: dict[str, object],
    trace_id: str | None,
    source: str | Path,
) -> None:
    if payload.get("kind") != "replay":
        raise CheckpointMismatchError(
            f"{source}: image holds a {payload.get('kind')!r} payload, "
            "expected a replay checkpoint"
        )
    for key, expected in (
        ("spec", spec_state(spec)),
        ("mode", mode),
        ("trace_sha256", trace_id),
    ):
        if payload.get(key) != expected:
            raise CheckpointMismatchError(
                f"{source}: checkpoint {key} {payload.get(key)!r} does not "
                f"match this run's {expected!r}"
            )


# ----------------------------------------------------------------------
# The resumable replay loop
# ----------------------------------------------------------------------
def run_resumable(
    spec: ExperimentSpec,
    base_trace: list[Request],
    *,
    horizon: float | None = None,
    warmup: list[Request] | None = None,
    request_cap: int = DEFAULT_REQUEST_CAP,
    skip_reads: bool = True,
    fault_plan: FaultPlan | None = None,
    checkpoint: CheckpointPolicy | None = None,
    resume_from: str | Path | None = None,
    label: str | None = None,
) -> SimResult:
    """Replay a spec with optional checkpointing and/or resumption.

    ``horizon=None`` runs until the first block wears out (Figure 5 mode);
    otherwise the replay covers ``horizon`` simulated seconds (Table 4
    mode).  Both match the plain runners request for request.

    ``resume_from`` restores a checkpoint image written by a previous
    invocation with the same spec, mode, and base trace (validated; a
    mismatch raises :class:`~repro.ckpt.image.CheckpointMismatchError`)
    and continues the replay exactly where the image froze it.  The
    warmup is *not* replayed on resume — its effects are part of the
    restored state.

    ``checkpoint`` enables periodic images per :class:`CheckpointPolicy`;
    checkpointing changes no RNG stream and no replay decision, so a
    checkpointed run returns the same result as an uncheckpointed one.
    """
    stop = StopCondition(
        until_first_failure=horizon is None,
        max_time=horizon,
        max_requests=request_cap,
    )
    mode: dict[str, object] = {
        "horizon": horizon,
        "request_cap": request_cap,
        "skip_reads": skip_reads,
        "fault_plan": fault_plan_state(fault_plan),
        "warmup_sha256": trace_digest(warmup),
    }
    trace_id = trace_digest(base_trace)

    simulator = Simulator(
        build_spec_backend(spec, fault_plan=fault_plan), skip_reads=skip_reads
    )
    resampler = SegmentResampler(
        base_trace, rng=spawn_rng(make_rng(spec.seed), "resampler")
    )
    if resume_from is not None:
        payload = read_image(resume_from)
        _check_resume_identity(payload, spec, mode, trace_id, resume_from)
        simulator.restore_state(payload["simulator"])  # type: ignore[arg-type]
        simulator.stack.restore_state(payload["backend"])  # type: ignore[attr-defined]
        resampler.restore_state(payload["resampler"])  # type: ignore[arg-type]
        ckpt_log.info(
            "resumed %s at %d requests / %d segments from %s",
            spec.label(), simulator.requests_done,
            resampler.segments_emitted, resume_from,
        )
    elif warmup:
        for request in warmup:
            simulator.apply(request)

    check_failure = stop.until_first_failure
    backend = simulator.stack
    last_checkpoint: int | None = None
    checkpoints_written = 0
    done = False
    while not done:
        if checkpoint is not None and (
            (last_checkpoint is None and checkpoint.initial)
            or (
                last_checkpoint is not None
                and simulator.requests_done - last_checkpoint
                >= checkpoint.every_requests
            )
            or (
                last_checkpoint is None
                and not checkpoint.initial
                and simulator.requests_done >= checkpoint.every_requests
            )
        ):
            write_image(
                checkpoint.path,
                _replay_payload(simulator, resampler, spec, mode, trace_id),
            )
            last_checkpoint = simulator.requests_done
            checkpoints_written += 1
            ckpt_log.debug(
                "checkpoint %d at %d requests -> %s",
                checkpoints_written, simulator.requests_done, checkpoint.path,
            )
            if checkpoint.on_checkpoint is not None:
                checkpoint.on_checkpoint(checkpoints_written)
            if (
                checkpoint.crash_after is not None
                and checkpoints_written >= checkpoint.crash_after
            ):
                raise ReplayInterrupted(
                    f"crash_after={checkpoint.crash_after} checkpoints "
                    f"written to {checkpoint.path}"
                )
        # The replay body below mirrors Simulator.run exactly (stop-check
        # order included) so resumable results match the plain runners.
        for request in resampler.next_segment():
            if stop.max_time is not None and request.time > stop.max_time:
                done = True
                break
            try:
                simulator.apply(request)
            except PowerLossError:
                simulator.power_lost = True
                done = True
                break
            if check_failure and backend.first_failure is not None:
                done = True
                break
            if (
                stop.max_requests is not None
                and simulator.requests_done >= stop.max_requests
            ):
                done = True
                break
    return simulator.result(label=label or spec.label())


def checkpoint_spec_seed(path: str | Path) -> int:
    """The spec seed recorded in a checkpoint image.

    The campaign supervisor uses this to resume a cell with the seed that
    actually wrote the checkpoint — which, after a seed-rotating retry, is
    no longer necessarily the spec's original seed.
    """
    payload = read_image(path)
    try:
        return int(payload["spec"]["seed"])  # type: ignore[index, call-overload]
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointMismatchError(
            f"{path}: image does not record a spec seed"
        ) from exc


def resume_spec(spec: ExperimentSpec, path: str | Path) -> ExperimentSpec:
    """``spec`` adjusted to the seed its checkpoint at ``path`` records."""
    return replace(spec, seed=checkpoint_spec_seed(path))
