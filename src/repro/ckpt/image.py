"""The on-disk checkpoint container: versioned, CRC-guarded, atomic.

A checkpoint image is a small binary file holding one JSON document (the
composed ``snapshot_state()`` payload of a simulator stack — see
:mod:`repro.ckpt.runner`).  The container is deliberately boring:

====================  =================================================
bytes 0-7             magic ``b"REPROCKP"``
bytes 8-9             format version, little-endian ``u16``
bytes 10-13           CRC-32 of the compressed payload (``u32``)
bytes 14-21           compressed payload length (``u64``)
bytes 22-...          zlib-compressed canonical JSON payload
====================  =================================================

Three properties matter more than the layout itself:

* **Canonical encoding** — :func:`encode_payload` sorts keys, forbids
  NaN/Infinity, and uses minimal separators, so two equal states encode
  to byte-identical documents.  The round-trip test suite leans on this:
  ``snapshot -> restore -> snapshot`` must reproduce the same bytes.
* **Fail-closed reads** — :func:`read_image` raises a typed error on a
  bad magic, an unknown version, a truncated file, or a CRC mismatch.
  A restore never sees a half-written or bit-rotted image as data.
* **Atomic writes** — :func:`write_image` writes to a same-directory
  temporary file, flushes and fsyncs it, then ``os.replace``\\ s it over
  the destination, so a crash mid-checkpoint leaves the previous image
  intact instead of a torn one.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

MAGIC = b"REPROCKP"
#: Bump on any incompatible change to the payload schema.
CHECKPOINT_VERSION = 1

_HEADER = struct.Struct("<8sHIQ")  # magic, version, crc32, payload length


class CheckpointError(Exception):
    """Base class for checkpoint image failures."""


class CheckpointCorruptError(CheckpointError):
    """The image bytes are damaged (bad magic, CRC mismatch, bad JSON)."""


class CheckpointTruncatedError(CheckpointCorruptError):
    """The image ends before the length its header promises."""


class CheckpointVersionError(CheckpointError):
    """The image was written by an incompatible format version."""


class CheckpointMismatchError(CheckpointError):
    """A valid image that belongs to a different configuration."""


def encode_payload(payload: dict[str, object]) -> bytes:
    """Canonical JSON bytes of ``payload`` (sorted keys, no NaN)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def write_image(path: str | Path, payload: dict[str, object]) -> int:
    """Atomically write ``payload`` as a checkpoint image; returns its size.

    The temporary file lives next to the destination (same filesystem,
    so the final ``os.replace`` is atomic) and is removed on any error.
    """
    path = Path(path)
    compressed = zlib.compress(encode_payload(payload), level=6)
    header = _HEADER.pack(
        MAGIC, CHECKPOINT_VERSION, zlib.crc32(compressed), len(compressed)
    )
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(header)
            handle.write(compressed)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return _HEADER.size + len(compressed)


def read_image(path: str | Path) -> dict[str, object]:
    """Read and verify a checkpoint image; returns the payload dict.

    Raises
    ------
    CheckpointTruncatedError
        The file is shorter than its header, or shorter than the payload
        length the header declares.
    CheckpointCorruptError
        Bad magic, CRC mismatch, undecodable compression, or a payload
        that is not a JSON object.
    CheckpointVersionError
        The header's format version is not :data:`CHECKPOINT_VERSION`.
    """
    raw = Path(path).read_bytes()
    if len(raw) < _HEADER.size:
        raise CheckpointTruncatedError(
            f"{path}: {len(raw)} bytes is shorter than the "
            f"{_HEADER.size}-byte header"
        )
    magic, version, crc, length = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise CheckpointCorruptError(
            f"{path}: bad magic {magic!r} (not a checkpoint image)"
        )
    if version != CHECKPOINT_VERSION:
        raise CheckpointVersionError(
            f"{path}: image version {version}, this build reads "
            f"version {CHECKPOINT_VERSION}"
        )
    compressed = raw[_HEADER.size:]
    if len(compressed) < length:
        raise CheckpointTruncatedError(
            f"{path}: header promises {length} payload bytes, "
            f"{len(compressed)} present"
        )
    if len(compressed) > length:
        # Trailing garbage means the writer's contract was violated.
        raise CheckpointCorruptError(
            f"{path}: {len(compressed) - length} trailing bytes after "
            "the declared payload"
        )
    if zlib.crc32(compressed) != crc:
        raise CheckpointCorruptError(f"{path}: payload CRC mismatch")
    try:
        payload = json.loads(zlib.decompress(compressed).decode("utf-8"))
    except (zlib.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(f"{path}: undecodable payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointCorruptError(
            f"{path}: payload is {type(payload).__name__}, expected an object"
        )
    return payload
