"""Fault-tolerant campaign supervisor for experiment matrices.

:func:`run_supervised_matrix` runs each matrix cell in its own worker
process and survives the failure modes a long sweep actually hits:

* **crashes / kills** — a worker that dies mid-cell (OOM kill, SIGKILL,
  unhandled exception) is retried; because every cell checkpoints through
  :func:`repro.ckpt.runner.run_resumable`, the retry *resumes* from the
  last image with the same seed, so the final result is bit-identical to
  an undisturbed run;
* **hangs** — a worker that exceeds the per-attempt timeout is killed and
  retried with a **fresh deterministic seed** (:func:`retry_seed`): a
  livelock is usually seed-dependent, so replaying the same checkpoint
  would hang again.  The stale checkpoint is discarded;
* **supervisor restarts** — per-cell results and attempt counts persist
  under ``policy.workdir`` (``cell-NNN/result.pkl``, ``state.json``), so
  re-invoking the supervisor with the same workdir skips finished cells
  and resumes interrupted ones instead of starting over;
* **exhausted retries** — a cell that fails ``max_attempts`` times is
  **quarantined**: the campaign completes, the report flags the cell with
  its attempt history and last error, and the remaining cells' results
  are delivered normally instead of the whole sweep raising.

Retries back off exponentially (``backoff * 2**(attempt-1)`` seconds)
without blocking other cells.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import random
import time
import traceback
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

from repro.ckpt.image import CheckpointError
from repro.ckpt.runner import CheckpointPolicy, resume_spec, run_resumable
from repro.fault.plan import FaultPlan
from repro.sim.engine import SimResult
from repro.sim.experiment import DEFAULT_REQUEST_CAP, ExperimentSpec
from repro.traces.model import Request
from repro.util.diagnostics import get_logger

supervisor_log = get_logger("ckpt")

#: Test-only hooks, inherited by fork-started workers.  ``_disturbance``
#: runs at the top of every worker attempt; ``_checkpoint_observer`` runs
#: after every checkpoint image the worker writes.  Tests and the CI
#: kill-and-resume smoke use them to hang or SIGKILL specific attempts.
_disturbance: Callable[[int, int], None] | None = None
_checkpoint_observer: Callable[[int, int, int], None] | None = None


def retry_seed(seed: int, attempt: int) -> int:
    """Fresh deterministic seed for retry ``attempt`` (2, 3, ...) of a cell.

    Mirrors the derived-stream idiom used for per-shard fault plans
    (:meth:`~repro.fault.plan.FaultPlan.for_shard`): the new seed is a
    pure function of the original seed and the attempt number, so a rerun
    of the whole campaign retries with the same seeds.
    """
    return random.Random(f"{seed}:retry{attempt}").getrandbits(48)


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/timeout/persistence policy for :func:`run_supervised_matrix`.

    Parameters
    ----------
    workdir:
        Campaign scratch directory.  Each cell gets ``cell-NNN/`` with its
        checkpoint image, pickled result, and attempt-state sidecar; a
        rerun pointing at the same workdir resumes the campaign.
    max_attempts:
        Attempts per cell before quarantine (first run included).
    timeout:
        Wall-clock seconds per attempt; ``None`` never times out.
    backoff:
        Base retry delay; attempt ``n`` waits ``backoff * 2**(n-1)``.
    checkpoint_every_requests:
        Cadence forwarded to each cell's :class:`CheckpointPolicy`.
    poll_interval:
        Supervisor polling granularity in seconds.
    """

    workdir: str | Path
    max_attempts: int = 3
    timeout: float | None = None
    backoff: float = 0.5
    checkpoint_every_requests: int = 100_000
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")


@dataclass
class CellOutcome:
    """What happened to one matrix cell across all its attempts."""

    index: int
    label: str
    status: str  # "ok" | "quarantined"
    attempts: int
    seeds: list[int]
    result: SimResult | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class CampaignReport:
    """Per-cell outcomes of a supervised campaign, in spec order."""

    cells: list[CellOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no cell was quarantined."""
        return all(cell.ok for cell in self.cells)

    @property
    def quarantined(self) -> list[CellOutcome]:
        return [cell for cell in self.cells if not cell.ok]

    def results(self) -> list[SimResult | None]:
        """Results in spec order; ``None`` marks a quarantined cell."""
        return [cell.result for cell in self.cells]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _atomic_pickle(path: Path, payload: object) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _cell_worker(
    index: int,
    attempt: int,
    spec: ExperimentSpec,
    base_trace: list[Request],
    horizon: float | None,
    warmup: list[Request] | None,
    request_cap: int,
    fault_plan: FaultPlan | None,
    cell_dir: str,
    every_requests: int,
) -> None:
    """One attempt at one cell; exits 0 with ``result.pkl`` on success."""
    directory = Path(cell_dir)
    try:
        if _disturbance is not None:
            _disturbance(index, attempt)
        ckpt_path = directory / "checkpoint.ckpt"
        resume_from: Path | None = None
        run_spec = spec
        if ckpt_path.exists():
            try:
                run_spec = resume_spec(spec, ckpt_path)
                resume_from = ckpt_path
            except CheckpointError:
                # A corrupt or foreign image never blocks the retry — the
                # cell simply restarts from scratch with its given seed.
                ckpt_path.unlink(missing_ok=True)
        if _checkpoint_observer is not None:
            observer = _checkpoint_observer

            def on_checkpoint(count: int) -> None:
                observer(index, attempt, count)
        else:
            on_checkpoint = None

        result = run_resumable(
            run_spec,
            base_trace,
            horizon=horizon,
            warmup=warmup,
            request_cap=request_cap,
            fault_plan=fault_plan,
            checkpoint=CheckpointPolicy(
                ckpt_path,
                every_requests=every_requests,
                on_checkpoint=on_checkpoint,
            ),
            resume_from=resume_from,
            label=spec.label(),
        )
        _atomic_pickle(
            directory / "result.pkl",
            {"result": result, "seed": run_spec.seed},
        )
    except BaseException as exc:  # report, then die nonzero
        try:
            (directory / "error.txt").write_text(
                "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                + "\n"
            )
        finally:
            raise


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
@dataclass
class _CellState:
    index: int
    spec: ExperimentSpec
    directory: Path
    attempts: int = 0
    seeds: list[int] = field(default_factory=list)
    not_before: float = 0.0
    process: multiprocessing.process.BaseProcess | None = None
    deadline: float = float("inf")
    last_error: str | None = None
    outcome: CellOutcome | None = None

    @property
    def state_path(self) -> Path:
        return self.directory / "state.json"

    @property
    def result_path(self) -> Path:
        return self.directory / "result.pkl"

    def save_sidecar(self, status: str) -> None:
        tmp = self.state_path.with_name(self.state_path.name + ".tmp")
        tmp.write_text(
            json.dumps(
                {
                    "attempts": self.attempts,
                    "seeds": self.seeds,
                    "status": status,
                    "error": self.last_error,
                },
                sort_keys=True,
            )
        )
        os.replace(tmp, self.state_path)

    def load_sidecar(self) -> None:
        if not self.state_path.exists():
            return
        try:
            state = json.loads(self.state_path.read_text())
            self.attempts = int(state.get("attempts", 0))
            self.seeds = [int(seed) for seed in state.get("seeds", [])]
            self.last_error = state.get("error")
        except (ValueError, TypeError):
            # A torn sidecar only loses attempt history, never results.
            pass


def _load_result(state: _CellState) -> CellOutcome | None:
    """Adopt a finished result from disk, if one exists and loads."""
    if not state.result_path.exists():
        return None
    try:
        with open(state.result_path, "rb") as handle:
            payload = pickle.load(handle)
        return CellOutcome(
            index=state.index,
            label=state.spec.label(),
            status="ok",
            attempts=max(state.attempts, 1),
            seeds=state.seeds or [payload["seed"]],
            result=payload["result"],
        )
    except Exception:
        state.result_path.unlink(missing_ok=True)
        return None


def _mp_context() -> multiprocessing.context.BaseContext:
    # fork keeps worker startup cheap and lets the test hooks above ride
    # into workers by inheritance; fall back where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )


def run_supervised_matrix(
    specs: Sequence[ExperimentSpec],
    base_trace: list[Request],
    *,
    horizon: float | None = None,
    warmup: list[Request] | None = None,
    request_cap: int = DEFAULT_REQUEST_CAP,
    fault_plan: FaultPlan | None = None,
    workers: int = 1,
    policy: SupervisorPolicy,
) -> CampaignReport:
    """Run a spec matrix under supervision; never raises for a failed cell.

    Semantics match :func:`repro.sim.experiment.run_matrix` (``horizon``
    selects first-failure vs fixed-horizon mode; one shared base trace),
    with durability on top — see the module docstring for the retry,
    resume, and quarantine rules.  Returns a :class:`CampaignReport` in
    spec order.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    workdir = Path(policy.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    context = _mp_context()

    states: list[_CellState] = []
    for index, spec in enumerate(specs):
        directory = workdir / f"cell-{index:03d}"
        directory.mkdir(exist_ok=True)
        state = _CellState(index=index, spec=spec, directory=directory)
        state.load_sidecar()
        state.outcome = _load_result(state)
        if state.outcome is not None:
            supervisor_log.info(
                "cell %d (%s): adopting finished result from %s",
                index, spec.label(), state.result_path,
            )
        states.append(state)

    pending = [state for state in states if state.outcome is None]
    running: list[_CellState] = []

    def launch(state: _CellState) -> None:
        state.attempts += 1
        attempt = state.attempts
        spec = state.spec
        if attempt > 1 and not (state.directory / "checkpoint.ckpt").exists():
            # No image to resume — rotate to a fresh deterministic seed.
            spec = replace(spec, seed=retry_seed(state.spec.seed, attempt))
        state.seeds.append(spec.seed)
        state.save_sidecar("running")
        state.process = context.Process(
            target=_cell_worker,
            args=(
                state.index, attempt, spec, base_trace, horizon, warmup,
                request_cap, fault_plan, str(state.directory),
                policy.checkpoint_every_requests,
            ),
            daemon=True,
        )
        state.process.start()
        state.deadline = (
            time.monotonic() + policy.timeout
            if policy.timeout is not None else float("inf")
        )
        supervisor_log.info(
            "cell %d (%s): attempt %d/%d started (seed %d)",
            state.index, state.spec.label(), attempt,
            policy.max_attempts, spec.seed,
        )

    def settle_failure(state: _CellState, reason: str, *, hung: bool) -> None:
        state.last_error = reason
        if hung:
            # A livelock is usually seed-dependent; resuming the same
            # checkpoint would hang again, so the next attempt restarts
            # from scratch with a rotated seed.
            (state.directory / "checkpoint.ckpt").unlink(missing_ok=True)
        if state.attempts >= policy.max_attempts:
            state.outcome = CellOutcome(
                index=state.index,
                label=state.spec.label(),
                status="quarantined",
                attempts=state.attempts,
                seeds=list(state.seeds),
                error=reason,
            )
            state.save_sidecar("quarantined")
            supervisor_log.warning(
                "cell %d (%s): quarantined after %d attempts: %s",
                state.index, state.spec.label(), state.attempts, reason,
            )
        else:
            state.not_before = (
                time.monotonic() + policy.backoff * 2 ** (state.attempts - 1)
            )
            pending.append(state)
            state.save_sidecar("retrying")

    while pending or running:
        now = time.monotonic()
        for state in [s for s in pending if s.not_before <= now]:
            if len(running) >= workers:
                break
            pending.remove(state)
            launch(state)
            running.append(state)

        time.sleep(policy.poll_interval)
        now = time.monotonic()
        for state in list(running):
            process = state.process
            assert process is not None
            if process.is_alive():
                if now >= state.deadline:
                    process.kill()
                    process.join()
                    running.remove(state)
                    settle_failure(
                        state,
                        f"attempt {state.attempts} timed out after "
                        f"{policy.timeout:.1f}s",
                        hung=True,
                    )
                continue
            process.join()
            running.remove(state)
            outcome = _load_result(state)
            if outcome is not None:
                # A complete result on disk is authoritative even if the
                # worker died after writing it (the write is atomic).
                state.outcome = outcome
                state.save_sidecar("ok")
                continue
            error_path = state.directory / "error.txt"
            detail = (
                error_path.read_text().strip()
                if error_path.exists()
                else f"worker exited with code {process.exitcode}"
            )
            error_path.unlink(missing_ok=True)
            settle_failure(
                state, f"attempt {state.attempts}: {detail}", hung=False
            )

    report = CampaignReport(cells=[state.outcome for state in states])  # type: ignore[misc]
    return report
