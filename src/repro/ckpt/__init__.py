"""Durable checkpoint/restore for the simulator stack (``repro.ckpt``).

Three layers, bottom-up:

* :mod:`repro.ckpt.image` — the on-disk container: versioned, CRC-guarded,
  atomically replaced, canonical-JSON payload;
* :mod:`repro.ckpt.runner` — :func:`run_resumable`, the segment-driven
  replay loop that snapshots the whole stack at segment boundaries and
  resumes bit-identically;
* :mod:`repro.ckpt.supervisor` — :func:`run_supervised_matrix`, the
  fault-tolerant campaign driver (per-cell timeout, seeded retry,
  checkpoint-resume, quarantine).
"""

from repro.ckpt.image import (
    CHECKPOINT_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointTruncatedError,
    CheckpointVersionError,
    MAGIC,
    encode_payload,
    read_image,
    write_image,
)
from repro.ckpt.runner import (
    CheckpointPolicy,
    ReplayInterrupted,
    build_spec_backend,
    checkpoint_spec_seed,
    fault_plan_state,
    resume_spec,
    run_resumable,
    spec_state,
    trace_digest,
)
from repro.ckpt.supervisor import (
    CampaignReport,
    CellOutcome,
    SupervisorPolicy,
    retry_seed,
    run_supervised_matrix,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "MAGIC",
    "CampaignReport",
    "CellOutcome",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointPolicy",
    "CheckpointTruncatedError",
    "CheckpointVersionError",
    "ReplayInterrupted",
    "SupervisorPolicy",
    "build_spec_backend",
    "checkpoint_spec_seed",
    "encode_payload",
    "fault_plan_state",
    "read_image",
    "resume_spec",
    "retry_seed",
    "run_resumable",
    "run_supervised_matrix",
    "spec_state",
    "trace_digest",
    "write_image",
]
