"""Multi-channel device arrays: N independent shards behind one backend.

A :class:`DeviceArray` owns N channel shards — each a complete
chip + MTD + FTL + SW Leveler stack built by the existing factory — and
implements the same :class:`~repro.ftl.factory.StorageBackend` protocol
as a single :class:`~repro.ftl.factory.StorageStack`, so the simulation
engine drives either without knowing the topology.

Three pieces compose it:

* a :class:`~repro.array.striping.StripingPolicy` routes every array
  logical page to a ``(shard, local page)`` pair;
* the **batched dispatcher** (:meth:`DeviceArray.write_pages`) groups a
  request's page span per shard *before* touching any stack, so each
  shard sees one contiguous batch per request instead of interleaved
  single-page calls — the request batching that keeps per-shard GC
  decisions coherent;
* an optional :class:`~repro.array.coordinator.WearCoordinator`
  arbitrates SWL-Procedure across shards (per-shard-T or global-T).

Shards are fully independent below the dispatcher: separate chips,
separate free pools, separate BETs, separate fault injectors.  All
aggregate statistics are sums over shards; per-shard breakdowns stay
available for reporting.
"""

from __future__ import annotations

import random
from functools import partial
from typing import TYPE_CHECKING, Sequence

from repro.array.coordinator import WearCoordinator
from repro.array.striping import StripingPolicy, make_striping
from repro.core.config import SWLConfig
from repro.core.policies import LevelerSpec
from repro.core.leveler import RequestClock
from repro.flash.chip import FirstFailure
from repro.flash.errors import PowerLossError
from repro.ftl.base import DEFAULT_OP_RATIO, GC_FREE_FRACTION
from repro.ftl.factory import StorageStack, _count_power_loss_pages, build_stack
from repro.obs.heatmap import WearHeatmap
from repro.util.rng import make_rng, spawn_rng

if TYPE_CHECKING:
    from repro.fault.plan import FaultPlan
    from repro.flash.geometry import FlashGeometry
    from repro.obs.bus import BusLike
    # Annotation-only: a runtime import would initialize repro.sim, whose
    # engine reaches back into repro.ftl.factory (imported above).
    from repro.sim.metrics import EraseDistribution


class DeviceArray:
    """N channel shards behind a striped, batched dispatcher.

    Parameters
    ----------
    shards:
        The per-channel stacks, all over the same geometry and exporting
        the same logical page count.
    striping:
        Address routing policy; its shard count and per-shard page count
        must match ``shards``.
    coordinator:
        Cross-shard SW-Leveler arbitration; ``None`` when the shards run
        without static wear leveling.
    """

    def __init__(
        self,
        shards: Sequence[StorageStack],
        striping: StripingPolicy,
        *,
        coordinator: WearCoordinator | None = None,
    ) -> None:
        if not shards:
            raise ValueError("a device array needs at least one shard")
        if striping.num_shards != len(shards):
            raise ValueError(
                f"striping routes {striping.num_shards} shards but "
                f"{len(shards)} were provided"
            )
        pages = {shard.num_logical_pages for shard in shards}
        if len(pages) != 1:
            raise ValueError(f"shards export unequal logical spaces: {pages}")
        if striping.pages_per_shard != pages.pop():
            raise ValueError(
                f"striping assumes {striping.pages_per_shard} pages per "
                f"shard, shards export {shards[0].num_logical_pages}"
            )
        self.shards = list(shards)
        self.striping = striping
        self.coordinator = coordinator
        # Dispatcher hot-path state: reusable per-shard batch buffers
        # (cleared after every request, so no allocation per dispatch)
        # and precomputed component lists that save a property chain per
        # request (`shard.first_failure` / `shard.on_request` are hops
        # through dataclass properties).  Wiring identity is stable —
        # checkpoint restore overwrites component *state* in place — so
        # these lists never go stale.
        self._buffers: list[list[int]] = [[] for _ in self.shards]
        self._flashes = [shard.flash for shard in self.shards]
        self._layers = [shard.layer for shard in self.shards]
        # Per-shard single-page operations.  With no write interception
        # these are the layers' own bound methods (the historical fast
        # path, byte-identical dispatch); a shard whose leveler
        # intercepts host I/O gets the interceptor bound in front, so
        # every route to the shard — fused closure, single-page fast
        # path, batched fallback — goes through the same front-end.
        self._writers = []
        self._readers = []
        for shard in self.shards:
            intercept = shard._intercept
            if intercept is None:
                self._writers.append(shard.layer.write)
                self._readers.append(shard.layer.read)
            else:
                self._writers.append(partial(intercept.host_write, shard.layer))
                self._readers.append(partial(intercept.host_read, shard.layer))
        # Fused dispatchers (repro.array.striping): the striping policy
        # compiles its routing arithmetic around the shard page
        # operations once, so replaying a request is a single closure
        # call.  Bound as *instance* attributes they shadow the generic
        # methods below, which remain the fallback for non-fusing
        # policies and for batch shapes the closures delegate back
        # (multi-page non-range sequences, e.g. lba-modulo wraps).
        write_dispatch = striping.compile_pages_dispatch(
            self._writers,
            _count_power_loss_pages,
            self.write_pages,
        )
        if write_dispatch is not None:
            self.write_pages = write_dispatch  # type: ignore[method-assign]
        read_dispatch = striping.compile_pages_dispatch(
            self._readers,
            _count_power_loss_pages,
            self.read_pages,
        )
        if read_dispatch is not None:
            self.read_pages = read_dispatch  # type: ignore[method-assign]
        # The engine polls first_failure once per request, so it is a
        # plain data attribute: each chip's one-shot failure sink
        # re-derives it (at most N times per run) and the poll costs an
        # attribute load.  `_scan_first_failure` keeps the original
        # property semantics — first failing shard in index order, which
        # is deterministic because shards advance in lock-step with the
        # request stream.  Checkpoint restore re-derives it from the
        # restored chip state.
        self.first_failure: FirstFailure | None = self._scan_first_failure()
        for flash in self._flashes:
            flash.failure_sink = self._note_first_failure
        self._levelers = [
            shard.leveler for shard in self.shards
            if shard.leveler is not None
        ]
        # Every shard leveler observes every host request, so their
        # request clocks always agree — share one instance and advance
        # it once per request instead of once per shard.  Safe at build
        # time: the clocks are all zero, and checkpoint restore writes
        # the (identical) per-leveler counters into the shared instance.
        self._req_clock = RequestClock()
        for leveler in self._levelers:
            leveler.clock = self._req_clock
        # With the paper's erase-driven trigger on every shard (the
        # default), a request carries no per-leveler work at all — skip
        # the shard loop outright.  Safe to precompute: triggers are
        # wired once at construction (config._make_trigger) and never
        # reassigned on live stacks.
        self._any_request_driven = any(
            leveler._request_driven for leveler in self._levelers
        )
        # Lazy merged-distribution cache keyed on per-shard wear moments
        # (total, sum_sq, maximum, minimum) — exactly the quantities a
        # merged EraseDistribution is derived from, so a key hit is
        # guaranteed to reproduce the cached value.  Any erase on any
        # shard changes that shard's total and invalidates the key.
        self._dist_cache: tuple[tuple[tuple[int, int, int, int], ...],
                                "EraseDistribution"] | None = None
        self._shard_dists_cache: tuple[
            tuple[tuple[int, int, int, int], ...], list["EraseDistribution"]
        ] | None = None

    def _scan_first_failure(self) -> FirstFailure | None:
        for flash in self._flashes:
            failure = flash.first_failure
            if failure is not None:
                return failure
        return None

    def _note_first_failure(self) -> None:
        self.first_failure = self._scan_first_failure()

    # ------------------------------------------------------------------
    # StorageBackend protocol
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        if self.coordinator is not None:
            scope = self.coordinator.scope
        elif self._levelers:
            scope = "independent"  # challengers level per shard, unarbitrated
        else:
            scope = "no-swl"
        return (
            f"{self.shards[0].name}x{len(self.shards)}"
            f"[{self.striping.name},{scope}]"
        )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def sectors_per_page(self) -> int:
        return self.shards[0].sectors_per_page

    @property
    def num_logical_pages(self) -> int:
        return self.striping.total_pages

    def _group(self, lpns: Sequence[int]) -> list[tuple[int, list[int]]]:
        """The batched dispatcher: one ``(shard, local LPNs)`` batch each.

        Pages keep their request order within a shard; shards are applied
        in ascending index so replays are deterministic regardless of the
        span's starting channel.
        """
        buffers: list[list[int]] = [[] for _ in self.shards]
        self.striping.route_batch(lpns, buffers)
        return [
            (shard, batch) for shard, batch in enumerate(buffers) if batch
        ]

    def write_pages(self, lpns: Sequence[int]) -> int:
        """Generic batched dispatcher: route, group per shard, apply.

        Striping policies that can compile a fused dispatcher shadow
        this method with an instance-bound closure (see ``__init__``);
        it then only serves the closure's fallback shapes.  Single-page
        batches route once and call straight into the shard's driver —
        identical to a 1-element batch through its write_pages (page
        accounting included).
        """
        if len(lpns) == 1:
            shard, local = self.striping.route(lpns[0])
            try:
                self._writers[shard](local)
            except PowerLossError as exc:
                _count_power_loss_pages(exc, 0)
                raise
            return 1
        done = 0
        buffers = self._buffers
        shards = self.shards
        try:
            self.striping.route_batch(lpns, buffers)
            for index, batch in enumerate(buffers):
                if batch:
                    done += shards[index].write_pages(batch)
        except PowerLossError as exc:
            _count_power_loss_pages(exc, done)
            raise
        finally:
            for batch in buffers:
                if batch:
                    batch.clear()
        return done

    def read_pages(self, lpns: Sequence[int]) -> int:
        if len(lpns) == 1:
            shard, local = self.striping.route(lpns[0])
            try:
                self._readers[shard](local)
            except PowerLossError as exc:
                _count_power_loss_pages(exc, 0)
                raise
            return 1
        done = 0
        buffers = self._buffers
        shards = self.shards
        try:
            self.striping.route_batch(lpns, buffers)
            for index, batch in enumerate(buffers):
                if batch:
                    done += shards[index].read_pages(batch)
        except PowerLossError as exc:
            _count_power_loss_pages(exc, done)
            raise
        finally:
            for batch in buffers:
                if batch:
                    batch.clear()
        return done

    def on_request(self, now: float) -> None:
        # SWLeveler.on_request inlined across shards: the shared request
        # clock advances once for all of them, and with the paper's
        # erase-driven trigger (the common case) the per-leveler work is
        # a flag test — a call frame per shard per request would cost
        # more than the work itself.
        clock = self._req_clock
        clock.requests += 1
        clock.now = now
        if self._any_request_driven:
            for leveler in self._levelers:
                if leveler._request_driven and not leveler._in_procedure:
                    leveler._request_tick()

    @property
    def erase_counts(self) -> list[int]:
        """Per-block erase counts of every shard, concatenated."""
        counts: list[int] = []
        for shard in self.shards:
            counts.extend(shard.erase_counts)
        return counts

    def shard_erase_counts(self) -> list[list[int]]:
        return [list(shard.erase_counts) for shard in self.shards]

    def _wear_key(self) -> tuple[tuple[int, int, int, int], ...]:
        """Per-shard wear moments; changes whenever any block is erased."""
        return tuple(
            (wear.total, wear.sum_sq, wear.maximum, wear.minimum)
            for wear in (flash.wear for flash in self._flashes)
        )

    def erase_distribution(self) -> EraseDistribution:
        """Array-wide wear summary: exact integer merge of shard moments.

        Each shard snapshot is O(1) from its accumulator and the merge
        sums exact integer moments, so the result equals
        ``EraseDistribution.from_counts`` over the concatenated counts
        bit for bit at O(num_shards) cost.  The merged value is cached
        against the per-shard moments (every erase changes them), so
        repeated stat reads between erases — the engine samples wear far
        more often than blocks wear — cost a tuple compare.
        """
        from repro.sim.metrics import EraseDistribution

        key = self._wear_key()
        cached = self._dist_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        merged = EraseDistribution.merge(
            [shard.erase_distribution() for shard in self.shards]
        )
        self._dist_cache = (key, merged)
        return merged

    def shard_erase_distributions(self) -> list[EraseDistribution]:
        key = self._wear_key()
        cached = self._shard_dists_cache
        if cached is not None and cached[0] == key:
            return list(cached[1])
        dists = [shard.erase_distribution() for shard in self.shards]
        self._shard_dists_cache = (key, dists)
        return list(dists)

    def wear_heatmap(self, ts: float, bins: int = 64) -> WearHeatmap:
        """Array-wide heatmap over the concatenated block space.

        The global bin width comes from the total block count.  When it
        divides the (uniform) shard size, bin boundaries never straddle
        shards and the per-shard incremental bin sums concatenate into
        the global grid at O(bins) cost; otherwise fall back to the
        O(num_blocks) scan, which is always correct.
        """
        shard_blocks = len(self.shards[0].erase_counts)
        num_blocks = shard_blocks * len(self.shards)
        width = max(1, -(-num_blocks // bins))
        if shard_blocks % width:
            return WearHeatmap.from_counts(ts, self.erase_counts, bins)
        sums: list[int] = []
        for shard in self.shards:
            wear = shard.flash.wear
            wear.ensure_bins(width, shard.flash.erase_counts)
            sums.extend(wear.bin_sums)
        accumulators = [shard.flash.wear for shard in self.shards]
        return WearHeatmap.from_bin_sums(
            ts,
            num_blocks=num_blocks,
            bin_width=width,
            bin_sums=sums,
            min_count=min(acc.minimum for acc in accumulators),
            max_count=max(acc.maximum for acc in accumulators),
            total_erases=sum(acc.total for acc in accumulators),
        )

    def total_erases(self) -> int:
        return sum(shard.total_erases() for shard in self.shards)

    def total_programs(self) -> int:
        return sum(shard.total_programs() for shard in self.shards)

    @property
    def busy_time(self) -> float:
        return sum(shard.busy_time for shard in self.shards)

    def shard_busy_times(self) -> list[float]:
        """Accumulated busy time per channel shard, in shard order.

        Each shard's MTD accumulates its own busy time, so diffing this
        vector around a dispatched batch tells the service engine exactly
        which channels worked and for how long — the per-shard queue
        occupancy signal that lets channels serve concurrently on the
        virtual clock while the striped mutation order stays
        deterministic.
        """
        return [shard.mtd.busy_time for shard in self.shards]

    def _merged(self, dicts: list[dict[str, int]]) -> dict[str, int]:
        merged: dict[str, int] = {}
        for stats in dicts:
            for key, value in stats.items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def layer_stats(self) -> dict[str, int]:
        return self._merged([shard.layer_stats() for shard in self.shards])

    def swl_stats(self) -> dict[str, int]:
        merged = self._merged([shard.swl_stats() for shard in self.shards])
        if self.coordinator is not None and merged:
            for key, value in self.coordinator.stats.as_dict().items():
                merged[f"coord_{key}"] = value
        return merged

    def fault_stats(self) -> dict[str, int]:
        return self._merged([shard.fault_stats() for shard in self.shards])

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """Per-shard stack snapshots plus the striping/coordinator identity."""
        return {
            "num_shards": len(self.shards),
            "striping": self.striping.name,
            "shards": [shard.snapshot_state() for shard in self.shards],
            "coordinator": (
                self.coordinator.snapshot_state()
                if self.coordinator is not None else None
            ),
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Overwrite every shard in place from :meth:`snapshot_state`."""
        if state["num_shards"] != len(self.shards):
            raise ValueError(
                f"array snapshot holds {state['num_shards']} shards, "
                f"array has {len(self.shards)}"
            )
        if state["striping"] != self.striping.name:
            raise ValueError(
                f"array snapshot striping {state['striping']!r} does not "
                f"match {self.striping.name!r}"
            )
        coordinator_state = state["coordinator"]
        if (coordinator_state is None) != (self.coordinator is None):
            raise ValueError(
                "snapshot and array disagree on the presence of a coordinator"
            )
        for shard, shard_state in zip(self.shards, state["shards"]):  # type: ignore[arg-type]
            shard.restore_state(shard_state)
        self.first_failure = self._scan_first_failure()
        if self.coordinator is not None:
            self.coordinator.restore_state(coordinator_state)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return (
            f"DeviceArray(shards={len(self.shards)}, "
            f"striping={self.striping.name!r}, "
            f"scope={self.coordinator.scope if self.coordinator else None!r}, "
            f"logical_pages={self.num_logical_pages})"
        )


def build_array(
    geometry: "FlashGeometry",
    driver: str = "ftl",
    swl: SWLConfig | LevelerSpec | None = None,
    *,
    channels: int,
    striping: str = "page",
    swl_scope: str = "per-shard",
    op_ratio: float = DEFAULT_OP_RATIO,
    gc_free_fraction: float = GC_FREE_FRACTION,
    alloc_policy: str = "lifo",
    retire_worn: bool = False,
    store_data: bool = False,
    rng: random.Random | None = None,
    fault_plan: "FaultPlan | None" = None,
    bus: "BusLike | None" = None,
) -> DeviceArray:
    """Assemble a :class:`DeviceArray` of ``channels`` identical shards.

    Every shard is a full stack over its own copy of ``geometry`` (one
    chip per channel, the physical layout of real multi-channel parts).
    Shard levelers draw from decorrelated child streams of ``rng``
    (``shard0``, ``shard1``, ...), and ``fault_plan`` — when given —
    yields one :class:`~repro.fault.injector.FaultInjector` per shard
    with a per-shard derived seed, so no two channels replay the same
    fault sequence.  ``bus`` telemetry is fanned out as shard-tagged
    views: every shard emits on the same bus under its own shard id and
    its own busy-time clock, so merged metrics compose exactly.
    """
    if channels <= 0:
        raise ValueError(f"channels must be positive, got {channels}")
    base = rng or make_rng()
    shards = []
    for index in range(channels):
        injector = None
        if fault_plan is not None:
            from repro.fault.injector import FaultInjector

            injector = FaultInjector(fault_plan.for_shard(index))
        # Each shard emits on a shard-tagged view of the bus; build_stack
        # wires the view's clock to that shard's own mtd.busy_time.
        shards.append(
            build_stack(
                geometry,
                driver,
                swl,
                op_ratio=op_ratio,
                gc_free_fraction=gc_free_fraction,
                alloc_policy=alloc_policy,
                retire_worn=retire_worn,
                store_data=store_data,
                rng=spawn_rng(base, f"shard{index}"),
                injector=injector,
                bus=bus.for_shard(index) if bus else None,
            )
        )
    coordinator = None
    if swl is not None and swl.enabled:
        levelers = [shard.leveler for shard in shards]
        assert all(leveler is not None for leveler in levelers)
        if all(
            getattr(leveler, "supports_coordination", False)
            for leveler in levelers
        ):
            coordinator = WearCoordinator(swl.threshold, scope=swl_scope)
            for leveler in levelers:
                coordinator.attach(leveler)
        elif swl_scope == "global":
            # The coordinator arbitrates by reading shard BETs; a
            # challenger without one cannot honor a global threshold.
            raise ValueError(
                f"swl_scope='global' requires a coordinating (BET-based) "
                f"leveler; {levelers[0].label!r} levels each shard "
                f"independently"
            )
    policy = make_striping(
        striping, channels, shards[0].layer.num_logical_pages
    )
    return DeviceArray(shards, policy, coordinator=coordinator)
