"""Striping policies: routing logical pages to channel shards.

A multi-channel device exports one flat logical page space but stores it
across N independent channel shards (chip + FTL + SW Leveler each).  The
striping policy is the pure address arithmetic in between: it maps an
array-wide logical page number (LPN) to a ``(shard, local LPN)`` pair and
back.  Two layouts are provided:

* :class:`PageInterleaved` — round-robin, page granularity.  Consecutive
  logical pages land on consecutive channels, so a sequential write of N
  pages touches every channel once — the layout real multi-channel
  controllers use to extract parallelism.
* :class:`ContiguousRange` — each shard owns one contiguous slice of the
  logical space.  Locality-preserving: a file's pages stay on one channel,
  which concentrates wear and is exactly the imbalance the distributed
  wear-leveling ablation wants to exercise.

Both are bijections over ``[0, num_shards * pages_per_shard)``; a
1-shard policy of either kind is the identity map, which is what makes a
1-channel array bit-identical to the single-chip stack.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.flash.errors import PowerLossError


class StripingPolicy(ABC):
    """Bijective map between array LPNs and per-shard LPNs.

    Parameters
    ----------
    num_shards:
        Channel count of the array.
    pages_per_shard:
        Logical pages exported by every shard (shards are uniform).
    """

    #: Short name used by the CLI and in labels.
    name: str = "abstract"

    def __init__(self, num_shards: int, pages_per_shard: int) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if pages_per_shard <= 0:
            raise ValueError(
                f"pages_per_shard must be positive, got {pages_per_shard}"
            )
        self.num_shards = num_shards
        self.pages_per_shard = pages_per_shard
        #: Logical pages exported by the whole array.  A plain attribute,
        #: not a property: ``route``/``route_batch`` read it per call on
        #: the dispatcher hot path.
        self.total_pages = num_shards * pages_per_shard

    def check(self, lpn: int) -> None:
        if not 0 <= lpn < self.total_pages:
            raise ValueError(
                f"array LPN {lpn} out of range [0, {self.total_pages})"
            )

    @abstractmethod
    def route(self, lpn: int) -> tuple[int, int]:
        """Array LPN -> ``(shard, local LPN)``."""

    @abstractmethod
    def unroute(self, shard: int, local_lpn: int) -> int:
        """``(shard, local LPN)`` -> array LPN (inverse of :meth:`route`)."""

    def route_batch(
        self, lpns: "Sequence[int]", buffers: list[list[int]]
    ) -> None:
        """Route many LPNs, appending each local LPN to its shard's buffer.

        ``buffers`` must hold one list per shard; request order is
        preserved within each.  Equivalent to calling :meth:`route` per
        LPN (same range errors), but concrete policies inline the
        address arithmetic so the dispatcher hot path pays no per-page
        method call or tuple build.
        """
        for lpn in lpns:
            shard, local = self.route(lpn)
            buffers[shard].append(local)

    def route_span(
        self, start: int, stop: int
    ) -> list[tuple[int, range]] | None:
        """Route the contiguous span ``[start, stop)`` as per-shard ranges.

        Returns one ``(shard, local range)`` batch per touched shard in
        ascending shard order, each local range ascending — exactly the
        batches :meth:`route_batch` would build for the same ascending
        span, without the per-page arithmetic.  Policies whose local
        image of a span is not contiguous return ``None``; callers then
        fall back to :meth:`route_batch`.
        """
        return None

    def compile_pages_dispatch(
        self,
        page_ops: Sequence[Callable[[int], object]],
        on_power_loss: Callable[[PowerLossError, int], None],
        fallback: Callable[[Sequence[int]], int],
    ) -> Callable[[Sequence[int]], int] | None:
        """Compile a complete page-batch dispatcher for this policy.

        The returned closure ``dispatch(lpns) -> pages`` is a drop-in
        ``write_pages``/``read_pages`` body: contiguous ascending ranges
        (the engine's multi-page request shape) and single-element
        batches are served with the routing constants and per-shard
        ``page_ops`` bound as locals — one call frame per request, no
        policy method calls, no intermediate batches.  Anything else is
        delegated to ``fallback`` (the generic buffered path).

        Spans are applied shard by shard in ascending index and
        ascending local order — the same visit order as
        :meth:`route_batch` feeding per-shard batches, which is what
        keeps a compiled array bit-identical to the generic dispatcher.
        On a :class:`PowerLossError` the closure reports the pages
        completed before the loss through ``on_power_loss(exc, done)``
        and re-raises.  Policies that cannot fuse return ``None``.
        """
        return None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(shards={self.num_shards}, "
            f"pages_per_shard={self.pages_per_shard})"
        )


class PageInterleaved(StripingPolicy):
    """Round-robin page interleaving: ``lpn % N`` picks the channel."""

    name = "page"

    def route(self, lpn: int) -> tuple[int, int]:
        if not 0 <= lpn < self.total_pages:
            self.check(lpn)
        return lpn % self.num_shards, lpn // self.num_shards

    def route_batch(
        self, lpns: Sequence[int], buffers: list[list[int]]
    ) -> None:
        shards = self.num_shards
        total = self.total_pages
        for lpn in lpns:
            if 0 <= lpn < total:
                buffers[lpn % shards].append(lpn // shards)
            else:
                self.check(lpn)

    def route_span(
        self, start: int, stop: int
    ) -> list[tuple[int, range]] | None:
        # Shard s owns the lpns ≡ s (mod N); within an ascending span they
        # are N apart, so their local images (lpn // N) are consecutive.
        if start < 0:
            self.check(start)
        if stop > self.total_pages:
            self.check(stop - 1)
        shards = self.num_shards
        batches: list[tuple[int, range]] = []
        for shard in range(shards):
            first = start + (shard - start) % shards
            if first >= stop:
                continue
            last = first + (stop - 1 - first) // shards * shards
            batches.append(
                (shard, range(first // shards, last // shards + 1))
            )
        return batches

    def compile_pages_dispatch(
        self,
        page_ops: Sequence[Callable[[int], object]],
        on_power_loss: Callable[[PowerLossError, int], None],
        fallback: Callable[[Sequence[int]], int],
    ) -> Callable[[Sequence[int]], int] | None:
        shards = self.num_shards
        total = self.total_pages
        check = self.check
        ops = tuple(page_ops)
        if len(ops) != shards:
            raise ValueError(
                f"{shards} shards but {len(ops)} page operations"
            )

        def dispatch(lpns: Sequence[int]) -> int:
            if type(lpns) is range and lpns.step == 1:
                start = lpns.start
                stop = lpns.stop
                if start < 0:
                    check(start)
                if stop > total:
                    check(stop - 1)
                # Shard s owns the span lpns ≡ s (mod N); their local
                # images (lpn // N) are consecutive, so each shard's
                # share is a plain local range.  With the span anchor
                # divided once up front (q0, r0), a shard needs just one
                # division — for its page count — and no per-page
                # arithmetic at all.
                q0 = start // shards
                r0 = start - q0 * shards
                n = stop - start
                done = 0
                if n <= shards:
                    # Tiny span: at most one page per shard, so the
                    # count division and local range disappear; still
                    # visited in ascending shard order.
                    try:
                        for shard in range(shards):
                            offset = shard - r0
                            if offset < 0:
                                if offset + shards >= n:
                                    continue
                                ops[shard](q0 + 1)
                            else:
                                if offset >= n:
                                    continue
                                ops[shard](q0)
                            done += 1
                    except PowerLossError as exc:
                        on_power_loss(exc, done)
                        raise
                    return done
                for shard in range(shards):
                    offset = shard - r0
                    if offset < 0:
                        offset += shards
                        lo = q0 + 1
                    else:
                        lo = q0
                    if offset >= n:
                        continue
                    count = (n - 1 - offset) // shards + 1
                    op = ops[shard]
                    try:
                        for local in range(lo, lo + count):
                            op(local)
                    except PowerLossError as exc:
                        on_power_loss(exc, done + local - lo)
                        raise
                    done += count
                return done
            if len(lpns) == 1:
                lpn = lpns[0]
                if not 0 <= lpn < total:
                    check(lpn)
                try:
                    ops[lpn % shards](lpn // shards)
                except PowerLossError as exc:
                    on_power_loss(exc, 0)
                    raise
                return 1
            return fallback(lpns)

        return dispatch

    def unroute(self, shard: int, local_lpn: int) -> int:
        return local_lpn * self.num_shards + shard


class ContiguousRange(StripingPolicy):
    """Range sharding: shard ``i`` owns LPNs ``[i*P, (i+1)*P)``."""

    name = "range"

    def route(self, lpn: int) -> tuple[int, int]:
        if not 0 <= lpn < self.total_pages:
            self.check(lpn)
        return lpn // self.pages_per_shard, lpn % self.pages_per_shard

    def route_batch(
        self, lpns: Sequence[int], buffers: list[list[int]]
    ) -> None:
        per_shard = self.pages_per_shard
        total = self.total_pages
        for lpn in lpns:
            if 0 <= lpn < total:
                buffers[lpn // per_shard].append(lpn % per_shard)
            else:
                self.check(lpn)

    def route_span(
        self, start: int, stop: int
    ) -> list[tuple[int, range]] | None:
        # A span intersected with shard s's contiguous slice is itself
        # contiguous; shifting by the slice base gives the local range.
        if start < 0:
            self.check(start)
        if stop > self.total_pages:
            self.check(stop - 1)
        if start >= stop:
            return []
        per_shard = self.pages_per_shard
        batches: list[tuple[int, range]] = []
        for shard in range(start // per_shard, (stop - 1) // per_shard + 1):
            base = shard * per_shard
            batches.append(
                (shard,
                 range(max(start, base) - base,
                       min(stop, base + per_shard) - base))
            )
        return batches

    def compile_pages_dispatch(
        self,
        page_ops: Sequence[Callable[[int], object]],
        on_power_loss: Callable[[PowerLossError, int], None],
        fallback: Callable[[Sequence[int]], int],
    ) -> Callable[[Sequence[int]], int] | None:
        per_shard = self.pages_per_shard
        total = self.total_pages
        check = self.check
        ops = tuple(page_ops)
        if len(ops) != self.num_shards:
            raise ValueError(
                f"{self.num_shards} shards but {len(ops)} page operations"
            )

        def dispatch(lpns: Sequence[int]) -> int:
            if type(lpns) is range and lpns.step == 1:
                start = lpns.start
                stop = lpns.stop
                if start < 0:
                    check(start)
                if stop > total:
                    check(stop - 1)
                done = 0
                for shard in range(start // per_shard,
                                   (stop - 1) // per_shard + 1):
                    base = shard * per_shard
                    lo = start - base if start > base else 0
                    hi = stop - base if stop - base < per_shard else per_shard
                    op = ops[shard]
                    try:
                        for local in range(lo, hi):
                            op(local)
                    except PowerLossError as exc:
                        on_power_loss(exc, done + local - lo)
                        raise
                    done += hi - lo
                return done
            if len(lpns) == 1:
                lpn = lpns[0]
                if not 0 <= lpn < total:
                    check(lpn)
                try:
                    ops[lpn // per_shard](lpn % per_shard)
                except PowerLossError as exc:
                    on_power_loss(exc, 0)
                    raise
                return 1
            return fallback(lpns)

        return dispatch

    def unroute(self, shard: int, local_lpn: int) -> int:
        return shard * self.pages_per_shard + local_lpn


_POLICIES: dict[str, type[StripingPolicy]] = {
    PageInterleaved.name: PageInterleaved,
    ContiguousRange.name: ContiguousRange,
}


def striping_names() -> list[str]:
    """Names accepted by :func:`make_striping` (``page``, ``range``)."""
    return sorted(_POLICIES)


def make_striping(
    name: str, num_shards: int, pages_per_shard: int
) -> StripingPolicy:
    """Instantiate a striping policy by name."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown striping policy {name!r}; choose from {striping_names()}"
        ) from None
    return cls(num_shards, pages_per_shard)
