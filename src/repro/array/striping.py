"""Striping policies: routing logical pages to channel shards.

A multi-channel device exports one flat logical page space but stores it
across N independent channel shards (chip + FTL + SW Leveler each).  The
striping policy is the pure address arithmetic in between: it maps an
array-wide logical page number (LPN) to a ``(shard, local LPN)`` pair and
back.  Two layouts are provided:

* :class:`PageInterleaved` — round-robin, page granularity.  Consecutive
  logical pages land on consecutive channels, so a sequential write of N
  pages touches every channel once — the layout real multi-channel
  controllers use to extract parallelism.
* :class:`ContiguousRange` — each shard owns one contiguous slice of the
  logical space.  Locality-preserving: a file's pages stay on one channel,
  which concentrates wear and is exactly the imbalance the distributed
  wear-leveling ablation wants to exercise.

Both are bijections over ``[0, num_shards * pages_per_shard)``; a
1-shard policy of either kind is the identity map, which is what makes a
1-channel array bit-identical to the single-chip stack.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class StripingPolicy(ABC):
    """Bijective map between array LPNs and per-shard LPNs.

    Parameters
    ----------
    num_shards:
        Channel count of the array.
    pages_per_shard:
        Logical pages exported by every shard (shards are uniform).
    """

    #: Short name used by the CLI and in labels.
    name: str = "abstract"

    def __init__(self, num_shards: int, pages_per_shard: int) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        if pages_per_shard <= 0:
            raise ValueError(
                f"pages_per_shard must be positive, got {pages_per_shard}"
            )
        self.num_shards = num_shards
        self.pages_per_shard = pages_per_shard

    @property
    def total_pages(self) -> int:
        """Logical pages exported by the whole array."""
        return self.num_shards * self.pages_per_shard

    def check(self, lpn: int) -> None:
        if not 0 <= lpn < self.total_pages:
            raise ValueError(
                f"array LPN {lpn} out of range [0, {self.total_pages})"
            )

    @abstractmethod
    def route(self, lpn: int) -> tuple[int, int]:
        """Array LPN -> ``(shard, local LPN)``."""

    @abstractmethod
    def unroute(self, shard: int, local_lpn: int) -> int:
        """``(shard, local LPN)`` -> array LPN (inverse of :meth:`route`)."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(shards={self.num_shards}, "
            f"pages_per_shard={self.pages_per_shard})"
        )


class PageInterleaved(StripingPolicy):
    """Round-robin page interleaving: ``lpn % N`` picks the channel."""

    name = "page"

    def route(self, lpn: int) -> tuple[int, int]:
        self.check(lpn)
        return lpn % self.num_shards, lpn // self.num_shards

    def unroute(self, shard: int, local_lpn: int) -> int:
        return local_lpn * self.num_shards + shard


class ContiguousRange(StripingPolicy):
    """Range sharding: shard ``i`` owns LPNs ``[i*P, (i+1)*P)``."""

    name = "range"

    def route(self, lpn: int) -> tuple[int, int]:
        self.check(lpn)
        return lpn // self.pages_per_shard, lpn % self.pages_per_shard

    def unroute(self, shard: int, local_lpn: int) -> int:
        return shard * self.pages_per_shard + local_lpn


_POLICIES: dict[str, type[StripingPolicy]] = {
    PageInterleaved.name: PageInterleaved,
    ContiguousRange.name: ContiguousRange,
}


def striping_names() -> list[str]:
    """Names accepted by :func:`make_striping` (``page``, ``range``)."""
    return sorted(_POLICIES)


def make_striping(
    name: str, num_shards: int, pages_per_shard: int
) -> StripingPolicy:
    """Instantiate a striping policy by name."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown striping policy {name!r}; choose from {striping_names()}"
        ) from None
    return cls(num_shards, pages_per_shard)
