"""Array-wide wear coordination across channel shards.

Running one independent SW Leveler per channel levels wear *within* each
shard but cannot see imbalance *between* shards — the failure mode the
distributed wear-leveling literature warns about: a shard that receives
hot data wears out while its neighbours idle.  The
:class:`WearCoordinator` closes that gap.  Every shard leveler routes its
trigger check through the coordinator (the hook added to
:class:`~repro.core.leveler.SWLeveler`), which supports two scopes:

``per-shard``
    Each shard evaluates its own ``ecnt / fcnt`` against ``T`` and runs
    SWL-Procedure locally, exactly as a standalone stack would.  This is
    the default and the mode whose 1-channel behaviour is bit-identical
    to the single-chip system.

``global``
    The coordinator aggregates ``ecnt`` and ``fcnt`` over every shard
    into one array-wide unevenness level.  When that reaches ``T`` it
    runs SWL-Procedure on the *most uneven* shard (highest local
    ``ecnt / fcnt``), repeating until the aggregate level drops below
    ``T`` or no eligible shard can make progress.  Cold shards are thus
    leveled on behalf of hot ones — coordinated static wear leveling at
    array scale.

The two scopes let the ablation compare per-shard-T against global-T on
the same workload (``--swl-scope`` on the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.leveler import SWLeveler
from repro.util.diagnostics import leveler_log

#: Valid ``scope`` values, in CLI order.
SCOPES = ("per-shard", "global")


@dataclass
class CoordinatorStats:
    """Bookkeeping of the coordinator's global-scope decisions."""

    global_checks: int = 0      #: aggregate-threshold evaluations
    global_runs: int = 0        #: SWL-Procedure runs the coordinator forced
    shard_runs: dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, int]:
        data = {
            "global_checks": self.global_checks,
            "global_runs": self.global_runs,
        }
        for shard, runs in sorted(self.shard_runs.items()):
            data[f"shard{shard}_runs"] = runs
        return data


class WearCoordinator:
    """Aggregates shard BET counters and dispatches SWL-Procedure.

    Parameters
    ----------
    threshold:
        Array-wide unevenness threshold ``T`` for ``global`` scope.
    scope:
        ``"per-shard"`` (independent levelers) or ``"global"``.
    """

    def __init__(self, threshold: float, *, scope: str = "per-shard") -> None:
        if scope not in SCOPES:
            raise ValueError(
                f"unknown coordinator scope {scope!r}; choose from {SCOPES}"
            )
        if threshold <= 0:
            raise ValueError(f"threshold T must be positive, got {threshold}")
        self.threshold = threshold
        self.scope = scope
        self.levelers: list[SWLeveler] = []
        self.stats = CoordinatorStats()
        self._in_run = False

    def attach(self, leveler: SWLeveler) -> None:
        """Register a shard leveler and route its trigger through us."""
        leveler.coordinator = self
        self.levelers.append(leveler)

    # ------------------------------------------------------------------
    # Aggregate wear state
    # ------------------------------------------------------------------
    @property
    def ecnt(self) -> int:
        """Array-wide erase count since the shards' last BET resets."""
        return sum(leveler.bet.ecnt for leveler in self.levelers)

    @property
    def fcnt(self) -> int:
        """Array-wide count of set BET flags."""
        return sum(leveler.bet.fcnt for leveler in self.levelers)

    def unevenness(self) -> float:
        """Aggregate unevenness level ``sum(ecnt) / sum(fcnt)``."""
        fcnt = self.fcnt
        if fcnt == 0:
            return 0.0
        return self.ecnt / fcnt

    # ------------------------------------------------------------------
    # The leveler-side hook
    # ------------------------------------------------------------------
    def on_trigger(self, source: SWLeveler) -> None:
        """A shard leveler's trigger policy fired; decide what runs.

        Re-entrant calls (a forced recycle on one shard causing erases
        whose trigger checks land back here) are absorbed: the outer run
        already loops until the aggregate level is healthy.
        """
        if self.scope == "per-shard":
            source.maybe_run()
            return
        if self._in_run:
            return
        self.stats.global_checks += 1
        self._in_run = True
        try:
            while self.unevenness() >= self.threshold:
                target = self._most_uneven()
                if target is None or not target.run_procedure():
                    break
                shard = self.levelers.index(target)
                self.stats.global_runs += 1
                self.stats.shard_runs[shard] = (
                    self.stats.shard_runs.get(shard, 0) + 1
                )
                leveler_log.debug(
                    "coordinator: leveled shard %d (aggregate unevenness "
                    "now %.1f)", shard, self.unevenness(),
                )
        finally:
            self._in_run = False

    def _most_uneven(self) -> SWLeveler | None:
        """The eligible shard leveler with the highest local unevenness.

        A shard is eligible when it has recorded erases (``fcnt > 0``,
        Algorithm 1 step 1), is not already inside its own procedure, and
        is not suspended by its driver's in-flight garbage collection.
        """
        best: SWLeveler | None = None
        best_level = 0.0
        for leveler in self.levelers:
            if leveler.bet.fcnt == 0:
                continue
            if leveler.in_procedure or leveler.suspended:
                continue
            level = leveler.bet.unevenness()
            if best is None or level > best_level:
                best = leveler
                best_level = level
        return best

    # ------------------------------------------------------------------
    # Checkpointing (see repro.ckpt)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict[str, object]:
        """The coordinator's own mutable state: its decision statistics.

        Shard levelers snapshot themselves; the attachment wiring is
        rebuilt when the array is reconstructed.
        """
        return {
            "threshold": self.threshold,
            "scope": self.scope,
            "global_checks": self.stats.global_checks,
            "global_runs": self.stats.global_runs,
            "shard_runs": [
                [shard, runs] for shard, runs in sorted(self.stats.shard_runs.items())
            ],
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state`; rejects config mismatches."""
        if state["threshold"] != self.threshold or state["scope"] != self.scope:
            raise ValueError(
                f"coordinator snapshot (T={state['threshold']}, "
                f"scope={state['scope']!r}) does not match "
                f"(T={self.threshold}, scope={self.scope!r})"
            )
        self.stats = CoordinatorStats(
            global_checks=state["global_checks"],  # type: ignore[arg-type]
            global_runs=state["global_runs"],  # type: ignore[arg-type]
            shard_runs={shard: runs for shard, runs in state["shard_runs"]},  # type: ignore[union-attr]
        )
        self._in_run = False

    def __repr__(self) -> str:
        return (
            f"WearCoordinator(scope={self.scope!r}, T={self.threshold}, "
            f"shards={len(self.levelers)}, unevenness={self.unevenness():.1f})"
        )
