"""Multi-channel device arrays (striping, dispatch, wear coordination).

This package scales the single-chip reproduction to array topologies: a
:class:`DeviceArray` shards the storage stack across N channels behind a
striped, batched dispatcher, and a :class:`WearCoordinator` runs the
DAC'07 SWL-Procedure at array scope.  A 1-channel array is bit-identical
to the plain :class:`~repro.ftl.factory.StorageStack`.
"""

from repro.array.coordinator import SCOPES, CoordinatorStats, WearCoordinator
from repro.array.device import DeviceArray, build_array
from repro.array.striping import (
    ContiguousRange,
    PageInterleaved,
    StripingPolicy,
    make_striping,
    striping_names,
)

__all__ = [
    "SCOPES",
    "ContiguousRange",
    "CoordinatorStats",
    "DeviceArray",
    "PageInterleaved",
    "StripingPolicy",
    "WearCoordinator",
    "build_array",
    "make_striping",
    "striping_names",
]
