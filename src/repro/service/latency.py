"""O(1)-memory latency accounting for the service engine.

A soak run pushes millions of requests through the service engine;
keeping every latency sample would cost gigabytes and sorting them for
percentiles would dominate the run.  :class:`LatencyHistogram` bins
observations into fixed geometric buckets (eight per decade from 1 µs to
10,000 s) and estimates quantiles by linear interpolation within the
landing bucket — the same estimator Prometheus's ``histogram_quantile``
applies to the exported form of this very histogram, so the in-process
p99 and the dashboard p99 agree by construction.

Exact ``count``/``total``/``min``/``max`` ride alongside the bins, so
mean and worst-case latency are precise; only the interior quantiles are
interpolated (to within one bucket's ~33 % width).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

#: Bucket upper bounds: eight per decade, 1 µs .. 10,000 s.  Latencies in
#: this simulator are NAND service times (25 µs reads to multi-second
#: GC-amplified stalls), so the range brackets everything a sane run can
#: produce; beyond-range observations land in the +Inf overflow slot.
_DECADES = 10          # 1e-6 .. 1e4
_PER_DECADE = 8
LATENCY_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    1e-6 * 10.0 ** (index / _PER_DECADE)
    for index in range(_DECADES * _PER_DECADE + 1)
)


@dataclass(frozen=True)
class LatencySummary:
    """Frozen percentile summary of one latency population."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.p50,
            "p95_s": self.p95,
            "p99_s": self.p99,
            "max_s": self.maximum,
        }


class LatencyHistogram:
    """Geometric-bucket latency accumulator with interpolated quantiles."""

    __slots__ = ("counts", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        #: One slot per bound plus the trailing +Inf overflow slot.
        self.counts = [0] * (len(LATENCY_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0

    def observe(self, value: float) -> None:
        """Record one latency sample (seconds, >= 0)."""
        self.counts[bisect_left(LATENCY_BUCKET_BOUNDS, value)] += 1
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value
        if value < self.minimum:
            self.minimum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by interpolating within buckets.

        The estimate is clamped to the exact observed ``[min, max]``, so
        p0 and p100 (and any quantile landing in the first or final
        occupied bucket) never leave the range of latencies that actually
        happened.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count and cumulative + bucket_count >= rank:
                # An empty bucket never satisfies the rank: when the rank
                # was met exactly at the previous bucket's boundary, the
                # samples that meet it live in this, the *next occupied*
                # bucket — interpolating from an empty one would take the
                # wrong bucket's edges with a non-positive fraction.
                lower = LATENCY_BUCKET_BOUNDS[index - 1] if index else 0.0
                if index < len(LATENCY_BUCKET_BOUNDS):
                    upper = LATENCY_BUCKET_BOUNDS[index]
                else:
                    upper = self.maximum  # overflow slot: exact ceiling
                fraction = max(0.0, (rank - cumulative) / bucket_count)
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.minimum), self.maximum)
            cumulative += bucket_count
        return self.maximum

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram in place (exact)."""
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        if other.minimum < self.minimum:
            self.minimum = other.minimum

    def summary(self) -> LatencySummary:
        """Freeze the population into a :class:`LatencySummary`."""
        return LatencySummary(
            count=self.count,
            mean=self.mean,
            p50=self.quantile(0.50),
            p95=self.quantile(0.95),
            p99=self.quantile(0.99),
            maximum=self.maximum,
        )
