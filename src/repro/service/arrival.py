"""Arrival-rate models for the open-loop service engine.

The closed-loop replay consumes trace timestamps as-is: each request
"arrives" whenever the trace says, and service is instantaneous.  Service
mode instead models *who generates load*:

* :func:`poisson_arrivals` — an open-loop Poisson process.  The standard
  model for thousands of independent clients: by the Palm–Khintchine
  theorem, the superposition of many sparse independent client streams
  approaches a Poisson process, so ``rate = clients / think_time``
  (see :func:`open_loop_rate`) simulates a whole client population
  without materializing one queue per client.  Open-loop means arrivals
  never slow down when the device backs up — exactly the regime that
  exposes tail-latency interference from GC and static wear leveling.
* :func:`trace_paced` — arrivals at the trace's own (optionally
  compressed) timestamps, preserving its burst structure.

Both re-time requests from an underlying stream (typically the endless
:class:`~repro.traces.extend.SegmentResampler`), keeping the *access
pattern* of the workload while replacing its *timing*.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Iterable, Iterator

from repro.traces.model import Request


def open_loop_rate(clients: int, think_time: float) -> float:
    """Aggregate request rate of ``clients`` independent clients.

    Each simulated client issues a request, waits ``think_time`` seconds
    on average, and repeats; the superposed arrival process is Poisson
    with this rate.
    """
    if clients <= 0:
        raise ValueError(f"clients must be positive, got {clients}")
    if think_time <= 0:
        raise ValueError(f"think_time must be positive, got {think_time}")
    return clients / think_time


def poisson_arrivals(
    requests: Iterable[Request],
    rate: float,
    rng: random.Random,
) -> Iterator[Request]:
    """Re-time ``requests`` as an open-loop Poisson stream of ``rate``/s.

    Inter-arrival gaps are exponential draws from ``rng`` (a dedicated
    stream — see :func:`repro.util.rng.spawn_rng` — so arrival timing
    never perturbs resampling or leveler randomness).
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    now = 0.0
    expovariate = rng.expovariate
    for request in requests:
        now += expovariate(rate)
        yield replace(request, time=now)


def trace_paced(
    requests: Iterable[Request],
    *,
    speedup: float = 1.0,
) -> Iterator[Request]:
    """Arrivals at the trace's own timestamps, compressed by ``speedup``.

    ``speedup=1`` preserves the recorded pacing (and burst structure);
    larger values replay the same pattern proportionally faster, the
    usual way to turn a lightly-loaded desktop trace into an overload
    experiment without synthesizing a new workload.
    """
    if speedup <= 0:
        raise ValueError(f"speedup must be positive, got {speedup}")
    if speedup == 1.0:
        yield from requests
        return
    for request in requests:
        yield replace(request, time=request.time / speedup)
