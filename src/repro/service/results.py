"""Result types for open-loop service runs.

A :class:`ServiceResult` wraps the wear-accounting
:class:`~repro.sim.core.SimResult` the request core produces anyway and
adds what only service mode can measure: per-request latency percentiles
(overall and per channel), queue occupancy/backpressure statistics, and
the virtual-clock completion horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.service.latency import LatencySummary
from repro.sim.core import SimResult


@dataclass(frozen=True)
class ChannelServiceStats:
    """One channel's service-side accounting for a run."""

    channel: int
    served: int            #: requests that did work on this channel
    busy_time: float       #: accumulated service seconds
    peak_depth: int        #: peak outstanding requests (queued + waiters)
    stalls: int            #: arrivals that waited on backpressure
    stall_time: float      #: total admission-wait seconds
    latency: LatencySummary

    def as_dict(self) -> dict[str, object]:
        return {
            "channel": self.channel,
            "served": self.served,
            "busy_time_s": self.busy_time,
            "peak_depth": self.peak_depth,
            "stalls": self.stalls,
            "stall_time_s": self.stall_time,
            **{f"latency_{k}": v for k, v in self.latency.as_dict().items()},
        }


@dataclass(frozen=True)
class ServiceResult:
    """Outcome of one open-loop service run."""

    replay: SimResult               #: wear/endurance view of the same run
    queue_depth: int                #: configured per-channel bound
    latency: LatencySummary         #: end-to-end request latency
    channel_stats: list[ChannelServiceStats]
    completion_time: float          #: virtual seconds until the last completion

    @property
    def label(self) -> str:
        return self.replay.label

    @property
    def requests(self) -> int:
        return self.latency.count

    @property
    def channels(self) -> int:
        return len(self.channel_stats)

    @property
    def stalls(self) -> int:
        return sum(stats.stalls for stats in self.channel_stats)

    @property
    def service_throughput(self) -> float:
        """Requests completed per *virtual* second."""
        if self.completion_time <= 0:
            return 0.0
        return self.requests / self.completion_time

    def as_dict(self) -> dict[str, object]:
        return {
            "label": self.label,
            "requests": self.requests,
            "queue_depth": self.queue_depth,
            "completion_time_s": self.completion_time,
            "service_throughput_rps": self.service_throughput,
            "stalls": self.stalls,
            **{f"latency_{k}": v for k, v in self.latency.as_dict().items()},
            "channels": [stats.as_dict() for stats in self.channel_stats],
            "replay": self.replay.as_dict(),
        }
