"""Open-loop service front-end over the replay core (DESIGN.md §5g).

The closed-loop replay (:mod:`repro.sim.engine`) measures wear; this
package measures *service*: requests arrive from an arrival-rate model,
queue in bounded per-channel FIFOs on the virtual clock, and report
host-visible latency percentiles — including the tail interference that
garbage collection and static wear leveling inflict on their neighbours.
"""

from repro.service.arrival import open_loop_rate, poisson_arrivals, trace_paced
from repro.service.engine import DEFAULT_QUEUE_SAMPLE_EVERY, ServiceEngine
from repro.service.latency import (
    LATENCY_BUCKET_BOUNDS,
    LatencyHistogram,
    LatencySummary,
)
from repro.service.results import ChannelServiceStats, ServiceResult

__all__ = [
    "DEFAULT_QUEUE_SAMPLE_EVERY",
    "LATENCY_BUCKET_BOUNDS",
    "ChannelServiceStats",
    "LatencyHistogram",
    "LatencySummary",
    "ServiceEngine",
    "ServiceResult",
    "open_loop_rate",
    "poisson_arrivals",
    "trace_paced",
]
