"""Open-loop service engine: per-channel FIFO queues on the virtual clock.

Where the closed-loop :class:`~repro.sim.engine.Simulator` completes every
request instantly at its trace timestamp, :class:`ServiceEngine` models the
device as a long-running *service*: requests arrive from an arrival process
(:mod:`repro.service.arrival`), queue per channel in bounded FIFOs, and
complete when the channel has actually worked off everything ahead of them
— so a GC pass or an SWL-forced recycle triggered by one request lands as
queueing delay on the requests behind it.  That is the host-visible
p50/p95/p99 view of cleaning interference the wear counters cannot show.

Determinism contract
--------------------
Backend *mutations* happen in arrival order through the exact same
:meth:`~repro.sim.core.RequestCore.apply` path as the replay engine —
striping order, GC decisions, and SWL triggers are bit-identical to a
closed-loop replay of the same arrival-timed trace.  The queueing model is
layered on top as pure accounting: each request's service demand is the
per-shard ``busy_time`` delta its application produced (amplification
included), and per-channel completion times are derived from those demands
without feeding back into the backend.  Channels therefore *serve
concurrently* on the virtual clock while the simulated state stays
single-threaded and reproducible.

Queueing model (DESIGN.md §5g)
------------------------------
Each channel keeps an ascending deque of outstanding completion times.
On an arrival at ``t`` needing ``s`` seconds of a channel:

1. completions ``<= t`` are drained (those requests have left the queue);
2. if occupancy is still at the bound ``queue_depth``, admission waits
   until the oldest entry that frees a slot completes (backpressure —
   the stall is counted and its wait added to the request's latency);
3. service is FIFO: it starts at ``max(admission, previous completion)``
   and completes ``s`` seconds later.

A request spanning several channels completes when the *last* of its
per-channel completions does.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Iterable

from repro.flash.errors import PowerLossError
from repro.obs.bus import M_QUEUE_DEPTH
from repro.obs.events import QueueDepth
from repro.service.latency import (
    LATENCY_BUCKET_BOUNDS,
    LatencyHistogram,
)
from repro.service.results import ChannelServiceStats, ServiceResult
from repro.sim.core import RequestCore
from repro.traces.model import Request

if TYPE_CHECKING:
    from repro.ftl.factory import StorageBackend
    from repro.obs.telemetry import Telemetry

#: Emit a QueueDepth sample (and fold latency into the registry) every
#: this many served requests when telemetry is attached.
DEFAULT_QUEUE_SAMPLE_EVERY = 4096


class _Channel:
    """Mutable per-channel queue state (ascending completion times)."""

    __slots__ = (
        "pending", "last_completion", "served", "busy",
        "stalls", "stall_time", "peak_depth", "latency",
    )

    def __init__(self) -> None:
        self.pending: deque[float] = deque()
        self.last_completion = 0.0
        self.served = 0
        self.busy = 0.0
        self.stalls = 0
        self.stall_time = 0.0
        self.peak_depth = 0
        self.latency = LatencyHistogram()

    def complete(self, arrival: float, service: float, depth: int) -> float:
        """Queue ``service`` seconds arriving at ``arrival``; completion time."""
        pending = self.pending
        while pending and pending[0] <= arrival:
            pending.popleft()
        admit = arrival
        occupancy = len(pending)
        if occupancy >= depth:
            # Bounded queue: the arrival blocks until occupancy drops
            # below the bound, i.e. until the oldest of the entries that
            # must leave first completes.  pending[0] > arrival after the
            # drain above, so the wait is strictly positive.
            admit = pending[occupancy - depth]
            self.stalls += 1
            self.stall_time += admit - arrival
        start = admit if admit > self.last_completion else self.last_completion
        done = start + service
        self.last_completion = done
        pending.append(done)
        if len(pending) > self.peak_depth:
            self.peak_depth = len(pending)
        self.served += 1
        self.busy += service
        self.latency.observe(done - arrival)
        return done

    def occupancy_at(self, now: float) -> int:
        """Outstanding requests at virtual time ``now`` (drains finished).

        Counts admitted *and* backpressure-waiting requests, so under
        open-loop overload the value exceeds the configured bound —
        that excess is the visible symptom of saturation.
        """
        pending = self.pending
        while pending and pending[0] <= now:
            pending.popleft()
        return len(pending)


class ServiceEngine(RequestCore):
    """Schedules requests through bounded per-channel FIFO queues.

    Parameters beyond the :class:`~repro.sim.core.RequestCore` set:

    queue_depth:
        Per-channel outstanding-request bound; an arrival finding its
        channel full waits (open-loop backpressure) and the wait counts
        toward its latency.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry`: queue-depth
        gauges stream as :class:`~repro.obs.events.QueueDepth` events
        through the batched bus path, and the latency histograms fold
        into the metrics registries when the run finishes, so Prometheus
        and Chrome-trace artifacts carry the tail-latency data.
    queue_sample_every:
        Served-request period of the telemetry queue-depth samples.

    Reads are never skipped in service mode (``skip_reads`` stays
    ``False``): read service time is exactly what the latency percentiles
    exist to measure, even though reads cannot change wear.
    """

    def __init__(
        self,
        stack: "StorageBackend",
        *,
        queue_depth: int = 64,
        lba_modulo: bool = True,
        telemetry: "Telemetry | None" = None,
        queue_sample_every: int = DEFAULT_QUEUE_SAMPLE_EVERY,
        sample_interval: float | None = None,
        heatmap_interval: float | None = None,
        heatmap_bins: int = 64,
    ) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if queue_sample_every < 1:
            raise ValueError(
                f"queue_sample_every must be >= 1, got {queue_sample_every}"
            )
        super().__init__(
            stack,
            lba_modulo=lba_modulo,
            skip_reads=False,
            sample_interval=sample_interval,
            heatmap_interval=heatmap_interval,
            heatmap_bins=heatmap_bins,
        )
        self.queue_depth = queue_depth
        self.telemetry = telemetry
        self.queue_sample_every = queue_sample_every
        self.channels = [_Channel() for _ in range(stack.num_shards)]
        self.latency = LatencyHistogram()
        #: Optional per-request observer, called as ``on_served(request,
        #: latency)`` right after a request's end-to-end latency is
        #: recorded.  Pure accounting — it cannot influence scheduling —
        #: used by :mod:`repro.workloads.runner` for per-tenant
        #: attribution.
        self.on_served: Callable[[Request, float], None] | None = None
        self._metrics_published = False
        # Queue samples are timestamped with the *arrival clock*, not a
        # device's busy time: occupancy over virtual time is the curve an
        # operator would watch.  Shard-tagged bus views carry that clock.
        self._sample_time = 0.0
        self._queue_views = (
            [
                telemetry.bus.for_shard(shard, clock=self._sample_clock)
                for shard in range(stack.num_shards)
            ]
            if telemetry is not None
            else []
        )

    def _sample_clock(self) -> float:
        return self._sample_time

    # ------------------------------------------------------------------
    def serve(
        self,
        requests: Iterable[Request],
        *,
        max_requests: int | None = None,
        max_time: float | None = None,
        label: str | None = None,
    ) -> ServiceResult:
        """Serve ``requests`` until a bound is hit; summarize.

        ``max_requests`` counts requests served by *this* call (warmup
        applied beforehand through :meth:`apply` is excluded);
        ``max_time`` bounds the arrival clock in virtual seconds.  At
        least one bound is required — arrival processes are endless.
        """
        if max_requests is None and max_time is None:
            raise ValueError("an open-loop run needs max_requests or max_time")
        if max_requests is not None and max_requests <= 0:
            raise ValueError(f"max_requests must be positive, got {max_requests}")
        if max_time is not None and max_time <= 0:
            raise ValueError(f"max_time must be positive, got {max_time}")
        stack = self.stack
        channels = self.channels
        depth = self.queue_depth
        overall = self.latency
        shard_busy_times = stack.shard_busy_times
        telemetry = self.telemetry
        sample_every = self.queue_sample_every if telemetry is not None else 0
        on_served = self.on_served
        served = 0
        before = shard_busy_times()
        for request in requests:
            arrival = request.time
            if max_time is not None and arrival > max_time:
                break
            try:
                self.apply(request)
            except PowerLossError:
                self.power_lost = True
                break
            after = shard_busy_times()
            completion = arrival
            for shard, channel in enumerate(channels):
                service = after[shard] - before[shard]
                if service > 0.0:
                    done = channel.complete(arrival, service, depth)
                    if done > completion:
                        completion = done
            before = after
            overall.observe(completion - arrival)
            if on_served is not None:
                on_served(request, completion - arrival)
            served += 1
            if sample_every and served % sample_every == 0:
                self._sample_queues(arrival)
            if max_requests is not None and served >= max_requests:
                break
        return self.finish(label=label)

    def finish(self, *, label: str | None = None) -> ServiceResult:
        """Close the run: final telemetry samples, then the result."""
        if self.telemetry is not None:
            self._sample_queues(self.clock)
            self._publish_metrics()
            self.telemetry.flush()
        completion_time = self.clock
        stats: list[ChannelServiceStats] = []
        for index, channel in enumerate(self.channels):
            if channel.last_completion > completion_time:
                completion_time = channel.last_completion
            stats.append(
                ChannelServiceStats(
                    channel=index,
                    served=channel.served,
                    busy_time=channel.busy,
                    peak_depth=channel.peak_depth,
                    stalls=channel.stalls,
                    stall_time=channel.stall_time,
                    latency=channel.latency.summary(),
                )
            )
        return ServiceResult(
            replay=self.result(label=label),
            queue_depth=self.queue_depth,
            latency=self.latency.summary(),
            channel_stats=stats,
            completion_time=completion_time,
        )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _sample_queues(self, now: float) -> None:
        """Emit one :class:`QueueDepth` event per channel (batched path)."""
        assert self.telemetry is not None
        if not self.telemetry.bus.mask & M_QUEUE_DEPTH:
            return
        self._sample_time = now
        for view, channel in zip(self._queue_views, self.channels):
            view.emit(
                QueueDepth(depth=channel.occupancy_at(now),
                           stalls=channel.stalls)
            )

    def _publish_metrics(self) -> None:
        """Fold latency histograms into the telemetry registries, once.

        Per-channel service latencies land in each shard's registry (they
        merge exactly into the device-wide histogram, the same discipline
        as every other per-shard metric); the end-to-end request latency
        — a max over channels, which no per-shard merge can reconstruct —
        lands in shard 0's registry and passes through the merge.
        """
        if self._metrics_published:
            return
        self._metrics_published = True
        assert self.telemetry is not None
        collector = self.telemetry.collector
        bounds = LATENCY_BUCKET_BOUNDS
        for shard, channel in enumerate(self.channels):
            collector.registry(shard).histogram(
                "repro_service_channel_latency_seconds",
                "Per-channel request service latency (queueing included)",
                buckets=bounds,
            ).add_counts(channel.latency.counts, total=channel.latency.total)
        collector.registry(0).histogram(
            "repro_service_request_latency_seconds",
            "End-to-end request latency (slowest channel of each request)",
            buckets=bounds,
        ).add_counts(self.latency.counts, total=self.latency.total)
