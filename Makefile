# Convenience targets for the reproduction repository.

PYTHON ?= python3

.PHONY: install test bench bench-quick bench-trajectory bench-hotpath scale-gate examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-log:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-log:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-quick:
	REPRO_BENCH_QUICK=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only
	PYTHONPATH=src $(PYTHON) benchmarks/perf_trajectory.py
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpath.py

# Just the per-PR trajectory point (BENCH_PR.json), without the suite.
bench-trajectory:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_trajectory.py

# Hot-path microbenches + fixed-seed golden replay check.
bench-hotpath:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpath.py
	PYTHONPATH=src $(PYTHON) benchmarks/bench_hotpath.py --check-golden

# On-runner scale-feature budgets (telemetry overhead, parallel sweep).
scale-gate:
	PYTHONPATH=src $(PYTHON) scripts/scale_gate.py

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results \
	       $$(find . -name __pycache__ -type d)
