#!/usr/bin/env python3
"""Power-loss behaviour: dual-buffer BET persistence and table rebuild.

Paper Section 3.2 prescribes saving the BET at shutdown, reloading "any
existing correct version" after a crash (dual-buffer), and never scanning
spare areas to rebuild it.  This example simulates a full power cycle:

1. run a workload with the SW Leveler active;
2. persist the BET (clean shutdown) — then corrupt the newest copy to
   simulate a crash mid-save;
3. "reboot": rebuild the FTL mapping from spare-area tags, reload the BET
   from the surviving buffer, and verify data and leveling state.

Run:  python examples/crash_recovery.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro import MLC2_TINY, SWLConfig, build_stack
from repro.core.bet import BetStore, BlockErasingTable


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        paths = (str(Path(tmp) / "bet0.img"), str(Path(tmp) / "bet1.img"))
        store = BetStore(paths)

        # --- Session 1: normal operation --------------------------------
        stack = build_stack(
            MLC2_TINY, "ftl", SWLConfig(threshold=25, k=0),
            store_data=True, rng=random.Random(3),
        )
        layer, leveler = stack.layer, stack.leveler
        rng = random.Random(8)
        expected = {}
        for step in range(20_000):
            lpn = rng.randrange(layer.num_logical_pages // 2)
            payload = step.to_bytes(4, "little")
            layer.write(lpn, data=payload)
            expected[lpn] = payload
        leveler.persist(store)          # periodic checkpoint
        for step in range(2_000):       # more hot churn, then a clean save
            lpn = rng.randrange(8)
            payload = (10**6 + step).to_bytes(4, "little")
            layer.write(lpn, data=payload)
            expected[lpn] = payload
        leveler.persist(store)
        saved_ecnt = leveler.bet.ecnt
        print(f"Session 1: {stack.flash.total_erases()} erases, "
              f"BET saved with ecnt={saved_ecnt}, fcnt={leveler.bet.fcnt}")

        # --- Crash: the newest buffer is torn mid-write ------------------
        # Pick the newest image by its embedded sequence number — that is
        # what the loader trusts; mtime has filesystem granularity and two
        # back-to-back saves can share a timestamp.
        def slot_sequence(path: Path) -> int:
            _, sequence = BlockErasingTable.from_bytes(path.read_bytes())
            return sequence

        newest = max((Path(p) for p in paths), key=slot_sequence)
        image = bytearray(newest.read_bytes())
        image[-3] ^= 0xFF
        newest.write_bytes(bytes(image))
        print(f"Crash: corrupted {newest.name} (torn write)")

        # --- Session 2: attach after power loss --------------------------
        # The RAM translation table is gone; rebuild it from spare areas.
        recovered = layer.rebuild_mapping()
        intact = sum(1 for lpn, data in expected.items() if layer.read(lpn) == data)
        print(f"Reboot: rebuilt {recovered} mappings from spare-area tags; "
              f"{intact}/{len(expected)} logical pages verified intact")
        assert intact == len(expected)

        # The BET reloads from the older (valid) buffer, exactly as the
        # paper allows ("load any existing correct version").
        fresh = build_stack(
            MLC2_TINY, "ftl", SWLConfig(threshold=25, k=0),
            store_data=True, rng=random.Random(3),
        )
        restored = fresh.leveler.restore(store)
        print(f"BET restore from dual buffer: {'ok' if restored else 'FAILED'} "
              f"(ecnt={fresh.leveler.bet.ecnt}, a slightly stale but usable "
              "image — Section 3.3: the counters 'could tolerate some errors')")
        assert restored
        assert fresh.leveler.bet.ecnt <= saved_ecnt


if __name__ == "__main__":
    main()
