#!/usr/bin/env python3
"""When does static wear leveling pay off?  A workload comparison.

Runs the SW Leveler against four access patterns — the paper's mobile-PC
mix, uniform random, Zipf-skewed, and an append-only circular log — on
the same chip, and renders each run's physical wear as a terminal heat
map.  The rule of thumb it demonstrates: SWL's benefit is proportional to
how much of the device sits pinned under write-once data, not to how
skewed the *active* traffic is.

Run:  python examples/workload_comparison.py     (~2-3 minutes)
"""

from __future__ import annotations

from repro import SWLConfig, build_stack
from repro.analysis.figures import wear_map
from repro.flash.geometry import FlashGeometry
from repro.sim.engine import Simulator, StopCondition
from repro.sim.metrics import EraseDistribution, improvement_ratio
from repro.traces.generator import MobilePCWorkload, WorkloadParams
from repro.traces.synthetic import (
    SequentialLogWorkload,
    SyntheticParams,
    UniformWorkload,
    ZipfianWorkload,
)
from repro.util.tables import render_table

GEOMETRY = FlashGeometry(64, 32, 2048, 300, name="demo-64b")
SECTORS = 55 * 32 * 4  # the logical space the drivers will export


def mobile_pc():
    params = WorkloadParams(total_sectors=SECTORS, duration=6 * 3600.0, seed=4)
    workload = MobilePCWorkload(params)
    return workload.prefill_requests() + workload.requests()


def synthetic(factory, pinned: float, **kwargs):
    params = SyntheticParams(
        total_sectors=SECTORS, duration=3600.0, write_rate=30.0,
        pinned_fraction=pinned, seed=4,
    )
    workload = factory(params, **kwargs)
    return workload.prefill_requests() + workload.requests()


WORKLOADS = {
    "mobile-pc (paper)": mobile_pc,
    "uniform, no pinned data": lambda: synthetic(UniformWorkload, 0.0),
    "zipf a=1.2, 50% pinned": lambda: synthetic(ZipfianWorkload, 0.5, alpha=1.2),
    "circular log, 60% pinned": lambda: synthetic(SequentialLogWorkload, 0.6),
}


def run(trace, with_swl: bool):
    stack = build_stack(
        GEOMETRY, "ftl",
        SWLConfig(threshold=20, k=0) if with_swl else None,
    )
    simulator = Simulator(stack, skip_reads=True)
    stop = StopCondition(until_first_failure=True, max_requests=3_000_000)

    def cyclic():  # replay the finite trace cyclically until wear-out
        offset = 0.0
        while True:
            for request in trace:
                yield type(request)(request.time + offset, request.op,
                                    request.lba, request.sectors)
            offset += trace[-1].time + 1.0

    result = simulator.run(cyclic(), stop)
    return result, stack.flash.erase_counts


def main() -> None:
    rows = []
    for name, build_trace in WORKLOADS.items():
        trace = build_trace()
        baseline, baseline_counts = run(trace, with_swl=False)
        leveled, _ = run(trace, with_swl=True)
        gain = improvement_ratio(
            leveled.first_failure_time or leveled.sim_time,
            baseline.first_failure_time or baseline.sim_time,
        )
        distribution = EraseDistribution.from_counts(baseline_counts)
        rows.append(
            [name,
             round(distribution.deviation),
             round(leveled.erase_distribution.deviation),
             f"{gain:+.1f}%"]
        )
        print(f"--- {name}: baseline wear map ---")
        print(wear_map(baseline_counts, columns=32))
        print()
    render_table(
        ["Workload", "Baseline dev.", "Leveled dev.", "SWL lifetime gain"],
        rows,
        title="Static wear leveling benefit by workload shape",
    )
    print(
        "\nUniform traffic with nothing pinned gains ~nothing (dynamic wear "
        "leveling already suffices); the more of the chip sits under "
        "write-once data, the more lifetime the SW Leveler recovers."
    )


if __name__ == "__main__":
    main()
