#!/usr/bin/env python3
"""SLC vs MLC×2 endurance: the paper's future-work direction.

Paper Section 1: "the endurance of a block of MLC×2 flash memory is only
10,000 erase counts, compared to the 100,000 erase counts of its
counterpart of SLC flash memory"; the conclusion singles out "low-cost
solutions, such as MLC" for future reliability work.  This example runs
the same workload on an SLC-style chip and an MLC×2-style chip of equal
capacity (both endurance-scaled by the same factor) and shows why static
wear leveling matters ten times more for MLC.

Run:  python examples/mlc_vs_slc.py    (~2-4 minutes)
"""

from __future__ import annotations

from repro import SWLConfig
from repro.flash.geometry import CellType, FlashGeometry
from repro.sim.experiment import (
    ExperimentSpec,
    make_workload,
    run_until_first_failure,
    workload_params_for,
)
from repro.sim.metrics import improvement_ratio
from repro.traces.generator import DAY
from repro.util.tables import render_table

SCALE = 10  # endurance divided by 10 so runs finish in minutes


def geometry_for(cell: CellType) -> FlashGeometry:
    """Equal-capacity chips: MLC×2 packs 128 pages/block, SLC 64."""
    if cell is CellType.MLC2:
        return FlashGeometry(48, 128, 2048, 10_000 // SCALE,
                             cell_type=cell, name="mlc2-demo")
    return FlashGeometry(96, 64, 2048, 100_000 // SCALE,
                         cell_type=cell, name="slc-demo")


def main() -> None:
    rows = []
    for cell in (CellType.SLC, CellType.MLC2):
        geometry = geometry_for(cell)
        probe = ExperimentSpec("nftl", geometry, seed=2)
        params = workload_params_for(probe, duration=DAY, seed=13)
        workload = make_workload(params)
        trace = workload.requests()
        warmup = workload.prefill_requests()

        baseline = run_until_first_failure(
            ExperimentSpec("nftl", geometry, None, seed=2), trace, warmup=warmup
        )
        leveled = run_until_first_failure(
            ExperimentSpec("nftl", geometry, SWLConfig(threshold=100, k=0), seed=2),
            trace, warmup=warmup,
        )
        gain = improvement_ratio(
            leveled.first_failure_time, baseline.first_failure_time
        )
        rows.append(
            [cell.value.upper(),
             geometry.endurance * SCALE,
             round(baseline.first_failure_time / DAY, 2),
             round(leveled.first_failure_time / DAY, 2),
             f"{gain:+.1f}%"]
        )
    render_table(
        ["Cell type", "Rated endurance", "Baseline failure (days)",
         "With SWL (days)", "SWL gain"],
        rows,
        title=f"Same NFTL workload, equal capacity (endurance scaled 1/{SCALE})",
    )
    slc_days, mlc_days = rows[0][2], rows[1][2]
    print(
        f"\nThe MLC×2 device dies ~{slc_days / max(mlc_days, 1e-9):.0f}x sooner "
        "than SLC under the identical workload; static wear leveling is the "
        "difference between a usable and an unusable low-cost device — the "
        "paper's closing argument."
    )


if __name__ == "__main__":
    main()
