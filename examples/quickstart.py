#!/usr/bin/env python3
"""Quickstart: build a flash storage stack, write data, watch wear level.

Assembles the paper's full system — NAND chip, MTD layer, an NFTL driver,
and the SW Leveler — on a small simulated chip, runs a skewed host
workload against it with and without static wear leveling, and prints the
wear picture both ways.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import MLC2_TINY, SWLConfig, build_stack
from repro.analysis.figures import wear_map
from repro.sim.metrics import EraseDistribution
from repro.util.tables import render_table


def run_workload(with_swl: bool, *, writes: int = 40_000):
    """Drive one stack with 95%-hot traffic and return its wear summary."""
    stack = build_stack(
        MLC2_TINY,
        driver="nftl",
        swl=SWLConfig(threshold=20, k=0) if with_swl else None,
        store_data=True,
        rng=random.Random(7),
    )
    layer = stack.layer
    rng = random.Random(42)

    # Install some data that will never change (the "cold" problem).
    cold = list(range(layer.num_logical_pages // 2))
    for lpn in cold:
        layer.write(lpn, data=b"cold")

    # Then hammer a small hot set, as caches and logs do.
    hot = list(range(len(cold), len(cold) + layer.num_logical_pages // 10))
    for _ in range(writes):
        layer.write(rng.choice(hot), data=b"hot!")

    # Data is intact either way.
    assert all(layer.read(lpn) == b"cold" for lpn in cold)
    counts = list(stack.flash.erase_counts)
    return EraseDistribution.from_counts(counts), counts


def main() -> None:
    baseline, baseline_counts = run_workload(with_swl=False)
    leveled, leveled_counts = run_workload(with_swl=True)
    print("Physical wear, one character per block (NFTL baseline):")
    print(wear_map(baseline_counts))
    print("\nSame workload with the SW Leveler:")
    print(wear_map(leveled_counts))
    print()
    render_table(
        ["System", "Avg erases", "Deviation", "Max", "Min"],
        [
            ["NFTL (baseline)", round(baseline.average, 1),
             round(baseline.deviation, 1), baseline.maximum, baseline.minimum],
            ["NFTL + SW Leveler", round(leveled.average, 1),
             round(leveled.deviation, 1), leveled.maximum, leveled.minimum],
        ],
        title="Erase-count distribution after the same workload",
    )
    print(
        "\nWithout the SW Leveler the blocks pinned under cold data sit at "
        f"{baseline.minimum} erases while the hottest reaches {baseline.maximum}; "
        "with it, wear spreads across the whole chip "
        f"(deviation {baseline.deviation:.0f} -> {leveled.deviation:.0f})."
    )


if __name__ == "__main__":
    main()
