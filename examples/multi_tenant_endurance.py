#!/usr/bin/env python3
"""Three tenants, one device: who is wearing out the flash?

Multiplexes three tenant workloads — a Zipf hotspot, a phase-shifting
hot set, and a mixed 50/50 read/write stream — onto disjoint regions of
one four-channel array, replays the interleaved stream, and attributes
every erase, page program, and busy second to the tenant whose request
caused it.  The attribution is *conserved*: each column of the tenant
table sums exactly to the device row.  The same run is then projected
into lifetime vocabulary (WAF, TBW, days at 1 DWPD) with SWL on vs off.

Run:  python examples/multi_tenant_endurance.py     (~30 seconds)
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.config import SWLConfig
from repro.endurance import project_endurance
from repro.sim.experiment import (
    ExperimentSpec,
    logical_sectors_of,
    scaled_mlc2_geometry,
)
from repro.sim.metrics import TenantUsage
from repro.util.tables import render_table  # prints directly
from repro.workloads import (
    MultiTenantWorkload,
    ShapeParams,
    TenantSpec,
    make_shape,
    run_multi_tenant_replay,
)

SEED = 11
REQUESTS = 30_000

TENANT_SHAPES = (
    ("analytics", "hotspot"),   # skewed point updates
    ("migrating", "phase"),     # hot set that moves every period
    ("webcache", "mixed"),      # 50/50 reads and writes
)


def build_workload(sectors: int) -> MultiTenantWorkload:
    tenants = [
        TenantSpec(
            name=name,
            shape=make_shape(
                shape_name,
                ShapeParams(
                    total_sectors=sectors,
                    rate=8.0,
                    seed=SEED + index,
                ),
                period=600.0,
            ),
            weight=1.0 + 0.5 * index,
        )
        for index, (name, shape_name) in enumerate(TENANT_SHAPES)
    ]
    return MultiTenantWorkload(tenants, sectors, seed=SEED)


def main() -> None:
    geometry = scaled_mlc2_geometry(24, scale=100)
    swl_on = ExperimentSpec(
        "ftl", geometry, SWLConfig(threshold=100.0), seed=SEED, channels=4
    )
    sectors = logical_sectors_of(swl_on)

    result = run_multi_tenant_replay(
        swl_on, build_workload(sectors), max_requests=REQUESTS
    )
    assert not result.conservation_errors(), result.conservation_errors()

    total = TenantUsage.totals(result.tenants)
    rows = [
        [usage.name, usage.requests, usage.pages_written, usage.erases,
         f"{usage.busy_time:.2f}",
         f"{100 * usage.erases / max(1, total.erases):.1f}%"]
        for usage in result.tenants
    ]
    rows.append(
        ["device", result.replay.requests, result.replay.pages_written,
         result.replay.total_erases,
         f"{result.replay.device_busy_time:.2f}", "100.0%"]
    )
    render_table(
        ["tenant", "requests", "pages written", "erases", "busy (s)",
         "wear share"],
        rows,
        title="Per-tenant wear attribution (columns sum to the device row)",
    )

    print()
    print("Lifetime projection of the same traffic, SWL on vs off:")
    for spec in (replace(swl_on, swl=None), swl_on):
        replay = run_multi_tenant_replay(
            spec, build_workload(sectors), max_requests=REQUESTS
        ).replay
        projection = project_endurance(replay, geometry)
        print(
            f"  {projection.label:<40} WAF {projection.waf:.3f}  "
            f"TBW {projection.tbw_bytes / 1e9:.2f} GB  "
            f"{projection.days_at_one_dwpd:.1f} days @ 1 DWPD"
        )


if __name__ == "__main__":
    main()
