#!/usr/bin/env python3
"""Flash as a hard-disk cache: the paper's motivating deployment.

Section 1 motivates the endurance problem with "the flash-memory cache of
hard disks proposed by Intel" and Windows ReadyDrive; Section 5.2 notes
that FTL's seemingly long lifetime "could be substantially shortened when
flash memory is adopted in designs with a higher access frequency, e.g.,
disk cache."  This example models that deployment: a small MLC x2 cache
device absorbing a write-back stream whose rate is 50x the mobile-PC
trace, with a pinned read-cache region that rarely changes (the cold data
problem in its sharpest form).

Run:  python examples/disk_cache_wear.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import SWLConfig
from repro.sim.experiment import (
    ExperimentSpec,
    make_workload,
    run_until_first_failure,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.sim.metrics import SECONDS_PER_YEAR, improvement_ratio
from repro.traces.generator import DAY
from repro.util.tables import render_table


def main() -> None:
    geometry = scaled_mlc2_geometry(48, scale=10)  # endurance-scaled cache
    probe = ExperimentSpec("ftl", geometry, seed=3)

    # A disk-cache stream: 50x the desktop write rate, a large pinned
    # read-cache image (static), and a small hot write-back window.
    params = workload_params_for(probe, duration=DAY / 2, seed=9)
    params = replace(
        params,
        write_rate=1.82 * 50,
        read_rate=1.97 * 50,
        written_fraction=0.80,     # a cache fills most of its space
        static_fraction=0.65,      # pinned read-cache lines
        hot_fraction=0.15,         # write-back hot window
        hot_write_share=0.95,
    )
    workload = make_workload(params)
    trace = workload.requests()
    warmup = workload.prefill_requests()

    rows = []
    for label, swl in (("baseline", None), ("with SWL", SWLConfig(threshold=100, k=0))):
        result = run_until_first_failure(
            ExperimentSpec("ftl", geometry, swl, seed=3), trace, warmup=warmup
        )
        rows.append(
            [f"FTL cache ({label})",
             round(result.first_failure_time / DAY, 2),
             round(result.first_failure_years, 4),
             result.erase_distribution.maximum,
             round(result.erase_distribution.deviation)]
        )
    baseline_days, leveled_days = rows[0][1], rows[1][1]
    render_table(
        ["Configuration", "First failure (days)", "(years)", "Max erases", "Dev"],
        rows,
        title="Disk-cache deployment: 50x access frequency",
    )
    gain = improvement_ratio(leveled_days, baseline_days)
    unscaled_years = baseline_days * 10 / 365  # endurance scale was 10
    print(
        f"\nAt cache-level write rates the device fails in simulated days, "
        f"not years; static wear leveling buys {gain:+.1f}% lifetime.\n"
        "Scaling note: with the unscaled 10,000-cycle endurance the "
        f"baseline still lasts only ~{unscaled_years:.3f} years — exactly "
        "the paper's warning about high-access-frequency designs."
    )


if __name__ == "__main__":
    main()
