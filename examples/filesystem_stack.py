#!/usr/bin/env python3
"""The complete Figure 1 stack: files → FAT → FTL → MTD → NAND.

Paper Figure 1 tops the storage stack with "File Systems (e.g., DOS
FAT)".  This example runs an application-level workload — install a media
library once, then edit documents and append to logs daily — through the
bundled FAT-style file system, and shows what the NAND underneath
experiences with and without the SW Leveler.

The file system is what *creates* the paper's problem: the media files
become cold data pinned in place, while the allocation table, directory,
and document clusters churn.

Run:  python examples/filesystem_stack.py    (~1-2 minutes)
"""

from __future__ import annotations

import random

from repro import SWLConfig, build_stack
from repro.analysis.figures import wear_map
from repro.flash.geometry import FlashGeometry
from repro.fs.fat import FatFileSystem
from repro.ftl.blockdev import BlockDevice
from repro.sim.metrics import EraseDistribution
from repro.util.tables import render_table

GEOMETRY = FlashGeometry(48, 16, 2048, 100_000, name="fs-demo")
DAYS = 500


def run(with_swl: bool):
    stack = build_stack(
        GEOMETRY, "ftl",
        SWLConfig(threshold=8, k=0) if with_swl else None,
        store_data=True, rng=random.Random(1),
    )
    fs = FatFileSystem(BlockDevice(stack.layer), max_files=32)
    fs.format()
    rng = random.Random(9)

    # Day 0: install the media library (the cold data).
    for index in range(8):
        fs.write_file(f"movie{index}", rng.randbytes(24_000))

    # Daily life: documents rewritten, logs appended, temp files churned.
    for day in range(DAYS):
        fs.write_file("report", rng.randbytes(rng.randrange(2_000, 12_000)))
        if not fs.exists("app.log"):
            fs.write_file("app.log", b"")
        fs.append("app.log", rng.randbytes(512))
        if fs.stat("app.log").size > 30_000:
            fs.delete("app.log")
        fs.write_file("tmp", rng.randbytes(4_000))
        fs.delete("tmp")

    # The library is still intact down through every layer.
    assert fs.listdir()[:1] and all(
        fs.stat(f"movie{index}").size == 24_000 for index in range(8)
    )
    return stack


def main() -> None:
    rows = []
    for label, with_swl in (("baseline", False), ("with SW Leveler", True)):
        stack = run(with_swl)
        counts = stack.flash.erase_counts
        distribution = EraseDistribution.from_counts(counts)
        rows.append(
            [f"FTL {label}",
             round(distribution.average, 1),
             round(distribution.deviation, 1),
             distribution.maximum,
             distribution.minimum]
        )
        print(f"--- NAND wear under the file system ({label}) ---")
        print(wear_map(counts, columns=24))
        print()
    render_table(
        ["Stack", "Avg erases", "Dev", "Max", "Min"],
        rows,
        title=f"{DAYS} days of file-system activity on the same chip",
    )
    print(
        "\nThe light rows in the baseline map are the movie files pinning "
        "their blocks; the SW Leveler pulls them into rotation without the "
        "file system noticing anything."
    )


if __name__ == "__main__":
    main()
