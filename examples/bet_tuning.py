#!/usr/bin/env python3
"""Choosing the BET resolution k and the threshold T for a controller.

A firmware engineer adopting the SW Leveler has two knobs (paper
Sections 3.2-3.3): the BET resolution ``k`` trades controller RAM against
overlooked cold blocks, and the unevenness threshold ``T`` trades
leveling quality against overhead.  This example sweeps both on one
workload and prints the resulting design space, together with the
analytic worst-case overhead bounds of Section 4 for the full-size chip.

Run:  python examples/bet_tuning.py     (~2-4 minutes)
"""

from __future__ import annotations

from repro import SWLConfig
from repro.analysis.memory import bet_size_bytes
from repro.analysis.overhead import WorstCaseConfig
from repro.flash.geometry import MLC2_1GB
from repro.sim.experiment import (
    ExperimentSpec,
    make_workload,
    run_fixed_horizon,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.traces.generator import DAY
from repro.util.tables import render_table


def main() -> None:
    geometry = scaled_mlc2_geometry(48, scale=10)
    probe = ExperimentSpec("ftl", geometry, seed=5)
    params = workload_params_for(probe, duration=DAY, seed=11)
    workload = make_workload(params)
    trace = workload.requests()
    warmup = workload.prefill_requests()
    horizon = 3 * DAY

    baseline = run_fixed_horizon(
        ExperimentSpec("ftl", geometry, None, seed=5), trace, horizon, warmup=warmup
    )
    rows = []
    for k in (0, 1, 2):
        for threshold in (100, 400):
            spec = ExperimentSpec(
                "ftl", geometry, SWLConfig(threshold=threshold, k=k), seed=5
            )
            result = run_fixed_horizon(spec, trace, horizon, warmup=warmup)
            extra = 100.0 * (result.total_erases / baseline.total_erases - 1.0)
            rows.append(
                [k, threshold,
                 f"{bet_size_bytes(geometry.num_blocks, k)}B",
                 round(result.erase_distribution.deviation, 1),
                 f"{extra:+.1f}%"]
            )
    render_table(
        ["k", "T", "BET RAM", "Erase dev.", "Extra erases"],
        rows,
        title=f"Design space on the simulated chip (baseline dev "
              f"{baseline.erase_distribution.deviation:.0f})",
    )

    # The Section 4 analytic bounds for the real 1 GB part, for context.
    analytic = []
    for threshold in (100, 1000):
        config = WorstCaseConfig(hot_blocks=256, cold_blocks=3840,
                                 threshold=threshold)
        analytic.append(
            [threshold,
             f"{bet_size_bytes(MLC2_1GB.num_blocks, 0)}B",
             f"{100 * config.extra_erase_ratio():.3f}%",
             f"{100 * config.extra_copy_ratio(128, 16):.3f}%"]
        )
    render_table(
        ["T", "BET RAM (k=0)", "Worst-case extra erases", "Worst-case extra copyings"],
        analytic,
        title="Analytic worst case for the paper's 1GB MLC x2 chip (Section 4)",
    )
    print(
        "\nReading the tables: k=0 with a moderate T gives the best leveling "
        "per byte of controller RAM; larger k halves the RAM but overlooks "
        "cold blocks; larger T cuts overhead at the cost of slower leveling."
    )


if __name__ == "__main__":
    main()
