#!/usr/bin/env python3
"""The paper's headline experiment at example scale (Figure 5).

Generates the synthetic mobile-PC trace of Section 5.1 (36.62% of LBAs
written, 1.82 writes/s, hot data in bursts, a static majority), derives
the "virtually unlimited" trace by resampling 10-minute segments, and
measures the first failure time of FTL and NFTL with and without the
SW Leveler.

Run:  python examples/mobile_pc_endurance.py          (~3-6 minutes)
      python examples/mobile_pc_endurance.py --fast   (~1 minute)
"""

from __future__ import annotations

import sys

from repro import SWLConfig
from repro.sim.experiment import (
    ExperimentSpec,
    make_workload,
    run_until_first_failure,
    scaled_mlc2_geometry,
    workload_params_for,
)
from repro.sim.metrics import improvement_ratio
from repro.traces.generator import DAY
from repro.traces.stats import summarize
from repro.util.tables import render_table


def main() -> None:
    fast = "--fast" in sys.argv
    geometry = scaled_mlc2_geometry(32 if fast else 64, scale=10 if fast else 5)
    probe = ExperimentSpec("ftl", geometry, seed=1)
    params = workload_params_for(probe, duration=2 * DAY, seed=42)
    workload = make_workload(params)
    trace = workload.requests()
    warmup = workload.prefill_requests()

    summary = summarize(warmup + trace, params.total_sectors)
    print(
        f"Base trace: {summary.num_writes} writes, {summary.num_reads} reads, "
        f"{100 * summary.written_lba_fraction:.2f}% of LBAs written "
        f"(paper: 36.62%), {summary.write_rate:.2f} writes/s (paper: 1.82)\n"
    )

    rows = []
    for driver in ("ftl", "nftl"):
        baseline = run_until_first_failure(
            ExperimentSpec(driver, geometry, None, seed=1), trace, warmup=warmup
        )
        leveled = run_until_first_failure(
            ExperimentSpec(driver, geometry, SWLConfig(threshold=100, k=0), seed=1),
            trace,
            warmup=warmup,
        )
        gain = improvement_ratio(
            leveled.first_failure_years, baseline.first_failure_years
        )
        rows.append(
            [driver.upper(),
             round(baseline.first_failure_years, 4),
             round(leveled.first_failure_years, 4),
             f"{gain:+.1f}%",
             round(baseline.erase_distribution.deviation),
             round(leveled.erase_distribution.deviation)]
        )
    render_table(
        ["Driver", "Baseline first failure (y)", "With SWL (y)",
         "Improvement", "Dev before", "Dev after"],
        rows,
        title="First failure time, scaled chip (paper: +51.2% FTL, +87.5% NFTL)",
    )
    print(
        "\nTimes are simulated years on an endurance-scaled chip; compare "
        "the improvement percentages and the deviation collapse, not the "
        "absolute years (see EXPERIMENTS.md)."
    )


if __name__ == "__main__":
    main()
