"""Setup shim for environments whose pip cannot build editable wheels.

The project is fully described by pyproject.toml; this file only enables
``python setup.py develop`` / legacy editable installs where the ``wheel``
package is unavailable.
"""
from setuptools import setup

setup()
