#!/usr/bin/env python
"""CI smoke: SIGKILL a sweep worker mid-cell, resume, compare reports.

Runs a two-cell first-failure matrix twice:

1. a clean, unsupervised ``run_matrix`` — the reference;
2. under the campaign supervisor, with a hook that SIGKILLs the worker of
   cell 1 right after its second checkpoint image lands on disk.

The supervisor must retry the killed cell by resuming its checkpoint, and
the final results must be **byte-identical** to the clean run (compared
as canonical ``SimResult.as_dict`` JSON — the markdown report is not the
comparison target because its supervision table legitimately differs in
attempt counts).

Exits 0 on success, 1 with a diagnostic on any divergence.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import tempfile

from repro.ckpt import SupervisorPolicy, run_supervised_matrix
import repro.ckpt.supervisor as supervisor_module
from repro.core.config import SWLConfig
from repro.sim.experiment import (
    ExperimentSpec,
    make_base_trace,
    run_matrix,
    scaled_mlc2_geometry,
    workload_params_for,
)

KILL_CELL = 1


def build_matrix() -> list[ExperimentSpec]:
    geometry = scaled_mlc2_geometry(24, scale=100)
    return [
        ExperimentSpec("ftl", geometry, None, seed=7),
        ExperimentSpec(
            "ftl", geometry, SWLConfig(enabled=True, threshold=10, k=0), seed=7
        ),
    ]


def canonical(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True, separators=(",", ":"))


def kill_after_second_checkpoint(index: int, attempt: int, count: int) -> None:
    if index == KILL_CELL and attempt == 1 and count >= 2:
        print(
            f"[smoke] SIGKILLing cell {index} attempt {attempt} "
            f"after checkpoint {count}",
            flush=True,
        )
        os.kill(os.getpid(), signal.SIGKILL)


def main() -> int:
    specs = build_matrix()
    params = workload_params_for(specs[0], duration=1200.0, seed=3)
    trace = make_base_trace(params)

    print("[smoke] clean reference run ...", flush=True)
    clean = run_matrix(specs, trace)

    print("[smoke] supervised run with mid-cell SIGKILL ...", flush=True)
    supervisor_module._checkpoint_observer = kill_after_second_checkpoint
    with tempfile.TemporaryDirectory(prefix="kill-resume-smoke-") as workdir:
        report = run_supervised_matrix(
            specs,
            trace,
            workers=2,
            policy=SupervisorPolicy(
                workdir=workdir,
                max_attempts=3,
                backoff=0.05,
                checkpoint_every_requests=2_000,
            ),
        )

    failures: list[str] = []
    if not report.ok:
        failures.append(
            f"campaign not ok: {[c.error for c in report.quarantined]}"
        )
    killed = report.cells[KILL_CELL]
    if killed.attempts != 2:
        failures.append(
            f"killed cell ran {killed.attempts} attempt(s), expected 2 "
            "(one kill, one resume)"
        )
    if len(set(killed.seeds)) != 1:
        failures.append(
            f"killed cell changed seeds {killed.seeds}; a crash retry must "
            "resume the checkpoint, not rotate the seed"
        )
    for index, (reference, outcome) in enumerate(
        zip(clean, report.results())
    ):
        if outcome is None:
            failures.append(f"cell {index} produced no result")
        elif canonical(reference) != canonical(outcome):
            failures.append(
                f"cell {index} diverged from the clean run after resume"
            )

    for failure in failures:
        print(f"[smoke] FAIL: {failure}", flush=True)
    if failures:
        return 1
    print(
        f"[smoke] PASS: killed worker resumed after "
        f"{killed.attempts - 1} retry; all {len(clean)} cells "
        "byte-identical to the clean run",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
