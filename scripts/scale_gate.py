"""CI scale gate: on-runner budgets for the scale features.

Measures, on the machine actually running the job, the two scale-feature
budgets that regressed before PR 7 and are cheap enough to gate every
build (DESIGN.md §5f):

* **telemetry overhead** — replay wall-clock with the full in-memory
  telemetry attached must stay within ``TELEMETRY_MAX_OVERHEAD_PCT`` of
  the telemetry-off replay, and the results must be identical minus the
  telemetry-only keys;
* **parallel sweep speedup** — ``run_matrix(workers=2)`` over a 4-spec
  sweep must beat the serial sweep (speedup >= ``MIN_PARALLEL_SPEEDUP``)
  *when the runner has at least two CPUs*, and the parallel results must
  equal the serial ones.  On a single-CPU runner the speedup target is
  skipped with a note — a process pool cannot beat serial replay there,
  and reporting pool overhead as a regression would be dishonest;
* **service mode** — a short open-loop soak through the service engine
  must serve every request and report finite, ordered latency
  percentiles overall and per channel (DESIGN.md §5g);
* **tenant attribution** — multi-tenant replay and service runs must
  conserve attribution exactly: per-tenant erase, page, and busy-time
  sums equal the device totals (DESIGN.md §5h);
* **replay golden hash** — the closed-loop replay digest must match the
  committed golden (``benchmarks/golden_hotpath.json``): the service
  refactor must never perturb replay results;
* **arena registry identity** — the same golden replay driven through
  ``LevelerSpec(kind="swl")`` (the policy arena's paper-SWL cell) must
  produce the identical digest: the leveler registry is an indirection,
  not a behaviour change.

The thresholds are deliberately loose (the full-precision trajectory
point lives in ``BENCH_PR.json`` via ``make bench-trajectory``): this
gate exists to catch order-of-magnitude regressions — a hot-path event
allocation sneaking back in, the sweep pool silently serialising — not
to police single-digit percentages on noisy shared runners.

Usage::

    PYTHONPATH=src python scripts/scale_gate.py
"""

from __future__ import annotations

import math
import os
import sys
import time
from pathlib import Path

from repro.core.config import SWLConfig
from repro.obs.telemetry import Telemetry
from repro.sim.experiment import (
    ExperimentSpec,
    make_workload,
    run_fixed_horizon,
    run_matrix,
    run_service_soak,
    scaled_mlc2_geometry,
    workload_params_for,
)

#: Gate workload: same shape as benchmarks/perf_trajectory.py, half the
#: horizon — large enough that pool start-up and trace pickling do not
#: dominate a 2-worker sweep, small enough for every CI build.
BLOCKS = 48
SCALE = 100
HORIZON = 0.5 * 86_400.0
SEED = 7

#: Alternating off/on pairs for the telemetry point; best-of wins.
REPEATS = 3

#: Replay with telemetry attached may cost at most this much extra
#: wall-clock over the telemetry-off replay.  The trajectory point
#: tracks the precise figure (<10 % at PR 7); the gate only catches
#: blow-ups.
TELEMETRY_MAX_OVERHEAD_PCT = 25.0

#: ``run_matrix(workers=2)`` must at least break even with serial when
#: the runner has two CPUs to offer.
MIN_PARALLEL_SPEEDUP = 1.0

#: Service-gate soak shape: enough requests through two channels that
#: queueing and percentile interpolation are exercised, small enough for
#: every CI build.
SERVICE_REQUESTS = 20_000
SERVICE_RATE = 400.0
SERVICE_DEPTH = 16


def _shared_trace(spec: ExperimentSpec):
    params = workload_params_for(spec, duration=HORIZON, seed=SEED + 1)
    workload = make_workload(params)
    return workload.requests(), workload.prefill_requests()


def gate_telemetry() -> list[str]:
    geometry = scaled_mlc2_geometry(BLOCKS, scale=SCALE)
    spec = ExperimentSpec("ftl", geometry, SWLConfig(threshold=100, k=0),
                          seed=SEED)
    trace, warmup = _shared_trace(spec)
    off_walls: list[float] = []
    on_walls: list[float] = []
    off = on = None
    for repeat in range(REPEATS):
        # Flip which side leads each pair: host drift is monotone, so a
        # fixed leader would systematically get the better slot.
        sides = ("off", "on") if repeat % 2 == 0 else ("on", "off")
        for side in sides:
            start = time.perf_counter()
            if side == "off":
                off = run_fixed_horizon(spec, trace, HORIZON, warmup=warmup)
                off_walls.append(time.perf_counter() - start)
            else:
                telemetry = Telemetry(heatmap_interval=HORIZON / 8)
                on = run_fixed_horizon(spec, trace, HORIZON, warmup=warmup,
                                       telemetry=telemetry)
                on_walls.append(time.perf_counter() - start)
    assert off is not None and on is not None
    off_s, on_s = min(off_walls), min(on_walls)
    overhead = 100.0 * (on_s - off_s) / off_s
    print(f"telemetry: off {off_s:.3f}s, on {on_s:.3f}s "
          f"({overhead:+.2f}% overhead, budget "
          f"{TELEMETRY_MAX_OVERHEAD_PCT:.0f}%)")
    failures = []
    if overhead > TELEMETRY_MAX_OVERHEAD_PCT:
        failures.append(
            f"telemetry overhead {overhead:+.2f}% exceeds "
            f"{TELEMETRY_MAX_OVERHEAD_PCT:.0f}% budget"
        )
    off_dict, on_dict = off.as_dict(), on.as_dict()
    on_dict.pop("heatmap_snapshots", None)
    if off_dict != on_dict:
        failures.append("telemetry-on result differs from telemetry-off "
                        "(minus telemetry-only keys)")
    return failures


def gate_parallel_sweep() -> list[str]:
    geometry = scaled_mlc2_geometry(BLOCKS, scale=SCALE)
    specs = [
        ExperimentSpec("ftl", geometry, SWLConfig(threshold=t, k=k),
                       seed=SEED)
        for t in (100.0, 1000.0) for k in (0, 3)
    ]
    trace, warmup = _shared_trace(specs[0])
    start = time.perf_counter()
    serial = run_matrix(specs, trace, horizon=HORIZON, warmup=warmup)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_matrix(specs, trace, horizon=HORIZON, warmup=warmup,
                          workers=2)
    parallel_s = time.perf_counter() - start
    speedup = serial_s / parallel_s
    cpus = os.cpu_count() or 1
    print(f"run_matrix x{len(specs)}: serial {serial_s:.3f}s, "
          f"workers=2 {parallel_s:.3f}s "
          f"(speedup {speedup:.3f}x on {cpus} CPUs)")
    failures = []
    if not all(a.as_dict() == b.as_dict() for a, b in zip(serial, parallel)):
        failures.append("workers=2 results differ from serial results")
    if cpus >= 2:
        if speedup < MIN_PARALLEL_SPEEDUP:
            failures.append(
                f"workers=2 speedup {speedup:.3f}x below "
                f"{MIN_PARALLEL_SPEEDUP:.1f}x on a {cpus}-CPU runner"
            )
    else:
        print("  note: single-CPU runner; speedup target skipped "
              "(pool cannot beat serial here)")
    return failures


def gate_service() -> list[str]:
    geometry = scaled_mlc2_geometry(BLOCKS, scale=SCALE)
    spec = ExperimentSpec("nftl", geometry, SWLConfig(threshold=100, k=0),
                          seed=SEED, channels=2)
    trace, warmup = _shared_trace(spec)
    start = time.perf_counter()
    result = run_service_soak(
        spec, trace,
        rate=SERVICE_RATE,
        max_requests=SERVICE_REQUESTS,
        queue_depth=SERVICE_DEPTH,
        warmup=warmup,
    )
    wall = time.perf_counter() - start
    latency = result.latency
    print(f"service soak: {result.requests} requests in {wall:.3f}s wall, "
          f"p50 {latency.p50 * 1e3:.3f}ms, p95 {latency.p95 * 1e3:.3f}ms, "
          f"p99 {latency.p99 * 1e3:.3f}ms, {result.stalls} stalls")
    failures = []
    if result.requests != SERVICE_REQUESTS:
        failures.append(
            f"service soak served {result.requests} of "
            f"{SERVICE_REQUESTS} requests"
        )
    summaries = [("request", latency)] + [
        (f"channel {stats.channel}", stats.latency)
        for stats in result.channel_stats
    ]
    for name, summary in summaries:
        if not (math.isfinite(summary.p99) and summary.p99 > 0.0):
            failures.append(
                f"service {name} p99 not finite/positive: {summary.p99}"
            )
        if not summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum:
            failures.append(
                f"service {name} percentiles out of order: "
                f"p50 {summary.p50}, p95 {summary.p95}, "
                f"p99 {summary.p99}, max {summary.maximum}"
            )
    return failures


#: Tenant-conservation gate shape: three tenants (hotspot, phase-shifting,
#: mixed) over two channels — enough that GC and SWL work fires and must
#: land in some tenant's ledger.
TENANT_REQUESTS = 10_000


def gate_tenant_conservation() -> list[str]:
    """Per-tenant attribution must sum exactly to the device totals.

    Exercises both runners: the closed-loop replay and the open-loop
    service engine (DESIGN.md §5h conservation invariant).  Exact
    equality, not a tolerance — attribution diffs cumulative counters,
    so any drift means a request's work was dropped or double-billed.
    """
    from repro.sim.experiment import logical_sectors_of
    from repro.workloads import (
        MultiTenantWorkload,
        ShapeParams,
        TenantSpec,
        make_shape,
        run_multi_tenant_replay,
        run_multi_tenant_service,
    )

    geometry = scaled_mlc2_geometry(BLOCKS, scale=SCALE)
    spec = ExperimentSpec("ftl", geometry, SWLConfig(threshold=100, k=0),
                          seed=SEED, channels=2)
    sectors = logical_sectors_of(spec)
    workload = MultiTenantWorkload(
        [
            TenantSpec(
                name=f"tenant-{shape}",
                shape=make_shape(
                    shape,
                    ShapeParams(total_sectors=sectors, rate=20.0,
                                seed=SEED + index),
                    period=600.0,
                ),
                weight=1.0 + index,
            )
            for index, shape in enumerate(("hotspot", "phase", "mixed"))
        ],
        sectors,
        seed=SEED,
    )
    failures = []
    replay = run_multi_tenant_replay(
        spec, workload, max_requests=TENANT_REQUESTS
    )
    for error in replay.conservation_errors():
        failures.append(f"tenant replay attribution: {error}")
    service = run_multi_tenant_service(
        spec, workload, max_requests=TENANT_REQUESTS, queue_depth=SERVICE_DEPTH
    )
    for error in service.conservation_errors():
        failures.append(f"tenant service attribution: {error}")
    shares = ", ".join(
        f"{usage.name} {usage.erases}" for usage in replay.tenants
    )
    print(f"tenant attribution: {TENANT_REQUESTS} requests x 2 engines, "
          f"erases by tenant [{shares}] sum to "
          f"{replay.replay.total_erases} (exact)")
    return failures


def gate_replay_golden() -> list[str]:
    """The committed golden replay hash must survive the service refactor."""
    sys.path.insert(
        0, str(Path(__file__).resolve().parent.parent / "benchmarks")
    )
    from bench_hotpath import check_golden

    if check_golden() != 0:
        return ["closed-loop replay digest drifted from the committed "
                "golden (benchmarks/golden_hotpath.json)"]
    return []


def gate_arena() -> list[str]:
    """The arena's paper-SWL cell replays the classic stack bit for bit.

    The policy arena drives its roster through ``LevelerSpec``; this gate
    re-runs the golden replay with ``LevelerSpec(kind="swl")`` standing
    in for ``SWLConfig`` and requires the digest to equal the committed
    golden (``benchmarks/golden_hotpath.json``) — the registry must be a
    zero-cost indirection for the paper's mechanism, never a behaviour
    change.
    """
    import json

    sys.path.insert(
        0, str(Path(__file__).resolve().parent.parent / "benchmarks")
    )
    from bench_hotpath import GOLDEN_PATH, golden_digest

    from repro.core.policies import LevelerSpec

    committed = json.loads(GOLDEN_PATH.read_text())
    current = golden_digest(swl=LevelerSpec(kind="swl", threshold=100, k=0))
    if current["result_sha256"] != committed.get("result_sha256"):
        return [
            "arena LevelerSpec(kind='swl') replay digest "
            f"{current['result_sha256'][:16]}… drifted from the committed "
            f"golden {str(committed.get('result_sha256'))[:16]}… — the "
            "registry's paper-SWL cell is no longer bit-identical to the "
            "classic SWLConfig stack"
        ]
    print(
        "arena: LevelerSpec(kind='swl') replay digest matches the "
        f"committed golden ({current['result_sha256'][:16]}…)"
    )
    return []


def main() -> int:
    failures = (
        gate_telemetry()
        + gate_parallel_sweep()
        + gate_service()
        + gate_tenant_conservation()
        + gate_replay_golden()
        + gate_arena()
    )
    if failures:
        for failure in failures:
            print(f"SCALE GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("scale gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
